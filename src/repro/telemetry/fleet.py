"""Fleet telemetry: ship worker deltas, aggregate campaign rollups.

A multi-host campaign leaves its telemetry scattered: every job attempt
writes a run directory on whichever host executed it, and the only
cross-host signal is heartbeat liveness.  This module closes that gap
(DESIGN §13):

* :class:`TelemetryShipper` — the worker side.  Watches one or more
  :class:`~repro.telemetry.MetricsRegistry` instances (the worker-level
  registry plus the active job's sink registry) and turns *changes
  since the last flush* into bounded, loss-counted deltas: counters and
  histograms ship as exact differences, gauges ship last-value with a
  worker wall timestamp, recovery events ride along in a bounded queue.
  Un-acknowledged deltas are retransmitted (sliding window over a
  monotonic per-worker ``seq``), so a delta is applied exactly once no
  matter how often the RPC carrying it is retried; when the in-flight
  window overflows, the oldest delta is *dropped and counted*
  (``lost_deltas``) rather than blocking the worker.

* merge algebra — :func:`merge_histogram` and the counter/gauge rules
  the aggregator applies: counters **sum**, histograms **bucket-merge**
  (same edges → elementwise count add), gauges are **last-write-wins by
  worker timestamp**.  Counter and histogram merge are associative and
  order-independent (property-tested), so shard/worker arrival order
  cannot change a rollup.

* :class:`FleetAggregator` — the coordinator side.  Ingests delta
  payloads (deduplicating by ``seq``), folds them into campaign-wide
  rollups, persists one windowed rollup line to
  ``<root>/rollups.jsonl`` (append + flush + fsync — crash-safe beside
  the queue journal, torn-final-line tolerated on load) and evaluates
  an SLO/anomaly rule set (:class:`SLORules`): step-time regression vs
  the §III-D cost-model prediction, lease-expiry and recovery-event
  spikes, degraded-mode entry.  Alert transitions are journaled to
  ``<root>/events.jsonl``.

* :func:`assemble_campaign_trace` — campaign-wide Perfetto assembly:
  per-attempt ``trace.json`` files grouped into one lane per worker,
  clock-skew normalised via the RPC timestamp echoes each worker
  estimated against the coordinator (``clock_offset`` in its deltas).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import threading
import time

from .metrics import MetricsRegistry, load_snapshots, quantile_from_dict
from .tracer import merge_chrome_traces

#: schema identifiers
DELTA_SCHEMA = "repro-fleet-delta-v1"
ROLLUP_SCHEMA = "repro-fleet-rollup-v1"

#: files the aggregator maintains under its root (beside the queue journal)
ROLLUPS_FILE = "rollups.jsonl"
FLEET_EVENTS_FILE = "events.jsonl"

#: quantiles surfaced in every rollup histogram
ROLLUP_QUANTILES = (0.5, 0.9, 0.99)


def _key(name: str, labels) -> tuple:
    if isinstance(labels, dict):
        labels = tuple(sorted(labels.items()))
    return (name, tuple(tuple(kv) for kv in labels))


def _labels_dict(key: tuple) -> dict:
    return dict(key[1])


# ---------------------------------------------------------------------
# merge algebra
# ---------------------------------------------------------------------
class MergeConflict(ValueError):
    """Two histogram contributions carry different bucket edges."""


def merge_histogram(agg: dict | None, delta: dict) -> dict:
    """Bucket-merge one histogram contribution into an aggregate.

    Both operands use the snapshot dict form (``edges``/``counts``/
    ``sum``/``count``/``min``/``max``).  Counts and sums add
    elementwise; min/max combine None-aware.  The merge is associative
    and commutative on the integer fields (counts), which is what the
    rollup-equality guarantee rests on.
    """
    if agg is None:
        return {
            "edges": list(delta["edges"]),
            "counts": list(delta["counts"]),
            "sum": float(delta["sum"]),
            "count": int(delta["count"]),
            "min": delta.get("min"),
            "max": delta.get("max"),
        }
    if list(agg["edges"]) != list(delta["edges"]):
        raise MergeConflict(
            f"histogram edges differ: {len(agg['edges'])} vs "
            f"{len(delta['edges'])} buckets"
        )
    agg["counts"] = [a + b for a, b in zip(agg["counts"], delta["counts"])]
    agg["sum"] += float(delta["sum"])
    agg["count"] += int(delta["count"])
    for field, pick in (("min", min), ("max", max)):
        d = delta.get(field)
        if d is not None:
            a = agg.get(field)
            agg[field] = d if a is None else pick(a, d)
    return agg


def merge_gauge(current: tuple | None, value: float, wall: float,
                worker: str) -> tuple:
    """Last-write-wins by *worker timestamp*: the stored triple is
    ``(value, wall, worker)`` and an incoming sample only replaces it
    when its wall clock is at least as new — replaying an old delta
    (retry, out-of-order shard) can never roll a gauge backwards."""
    if current is not None and wall < current[1]:
        return current
    return (float(value), float(wall), worker)


def _hist_delta(prev: dict | None, now: dict) -> dict | None:
    """The (exact) histogram difference ``now - prev``; None when no new
    observations landed."""
    if prev is None:
        if not now["count"]:
            return None
        return {k: (list(v) if isinstance(v, list) else v)
                for k, v in now.items()}
    dcount = now["count"] - prev["count"]
    if dcount <= 0:
        return None
    return {
        "edges": list(now["edges"]),
        "counts": [b - a for a, b in zip(prev["counts"], now["counts"])],
        "sum": now["sum"] - prev["sum"],
        "count": dcount,
        # min/max are not differentiable: ship the current extrema (the
        # aggregate min/max stays a conservative envelope)
        "min": now.get("min"),
        "max": now.get("max"),
    }


# ---------------------------------------------------------------------
# worker side: the shipper
# ---------------------------------------------------------------------
class TelemetryShipper:
    """Turn registry changes into bounded, exactly-once delta payloads.

    Parameters
    ----------
    worker:
        Stable worker identity (label on everything this ships).
    max_metrics:
        Instrument-entry cap per delta; overflow stays *pending* (not
        lost) and ships on the next flush.
    max_events:
        Bound on the pending recovery-event queue; overflow drops the
        oldest event and counts it in ``lost_events``.
    max_inflight:
        Sliding-window bound on un-acknowledged deltas; overflow drops
        the oldest delta and counts it in ``lost_deltas``.
    """

    def __init__(self, worker: str, *, max_metrics: int = 512,
                 max_events: int = 256, max_inflight: int = 64,
                 clock=time.time):
        self.worker = str(worker)
        self.max_metrics = int(max_metrics)
        self.max_events = int(max_events)
        self.max_inflight = int(max_inflight)
        self.clock = clock
        #: the worker-level registry (rpc latency, degraded gauge, ...)
        self.registry = MetricsRegistry()
        #: best current clock-offset estimate vs the coordinator [s]
        self.clock_offset = 0.0
        self.lost_events = 0
        self.lost_deltas = 0
        self.shipped_deltas = 0
        self._lock = threading.Lock()
        self._sources: list[tuple[MetricsRegistry, dict]] = [
            (self.registry, {})
        ]
        self._pending_counters: dict[tuple, float] = {}
        self._pending_gauges: dict[tuple, tuple] = {}
        self._pending_hists: dict[tuple, dict] = {}
        self._pending_events: list[dict] = []
        self._inflight: list[dict] = []
        self._seq = 0

    # -- sources --------------------------------------------------------
    def watch(self, registry: MetricsRegistry) -> None:
        """Start diffing ``registry`` on every flush (e.g. the active
        job's sink registry)."""
        with self._lock:
            if not any(r is registry for r, _ in self._sources):
                self._sources.append((registry, {}))

    def unwatch(self, registry: MetricsRegistry) -> None:
        """Stop watching; any un-shipped difference is folded into the
        pending delta first, so nothing recorded is lost."""
        with self._lock:
            for i, (r, cursors) in enumerate(self._sources):
                if r is registry and r is not self.registry:
                    self._collect_source(r, cursors)
                    del self._sources[i]
                    return

    def event(self, rec: dict) -> None:
        """Queue one recovery/journal event for shipping (bounded)."""
        with self._lock:
            self._pending_events.append(dict(rec))
            while len(self._pending_events) > self.max_events:
                self._pending_events.pop(0)
                self.lost_events += 1

    # -- diffing --------------------------------------------------------
    def _collect_source(self, registry: MetricsRegistry,
                        cursors: dict) -> None:
        try:
            instruments = list(registry)
        except RuntimeError:  # registry mutated mid-iteration (hot path)
            return  # next flush picks the changes up
        for (name, labels), inst in instruments:
            key = _key(name, labels)
            kind = inst.kind
            if kind == "counter":
                prev = cursors.get(key, 0.0)
                d = inst.value - prev
                if d:
                    self._pending_counters[key] = (
                        self._pending_counters.get(key, 0.0) + d
                    )
                    cursors[key] = inst.value
            elif kind == "gauge":
                if key not in cursors or cursors[key] != inst.value:
                    self._pending_gauges[key] = (inst.value, self.clock())
                    cursors[key] = inst.value
            elif kind == "histogram":
                now = inst.to_dict()
                d = _hist_delta(cursors.get(key), now)
                if d is not None:
                    try:
                        self._pending_hists[key] = merge_histogram(
                            self._pending_hists.get(key), d)
                    except MergeConflict:
                        self._pending_hists[key] = d
                    cursors[key] = now

    def collect(self) -> None:
        """Fold changes from every watched registry into pending."""
        with self._lock:
            for registry, cursors in self._sources:
                self._collect_source(registry, cursors)

    # -- flushing / acking ----------------------------------------------
    def _pop_pending(self, limit: int | None) -> dict | None:
        entries = 0
        counters, gauges, hists = [], [], []
        for store, out in ((self._pending_counters, counters),
                           (self._pending_gauges, gauges),
                           (self._pending_hists, hists)):
            for key in list(store):
                if limit is not None and entries >= limit:
                    break
                out.append((key, store.pop(key)))
                entries += 1
        events = self._pending_events[: self.max_events]
        del self._pending_events[: len(events)]
        if not (counters or gauges or hists or events):
            return None
        self._seq += 1
        return {
            "seq": self._seq,
            "wall": self.clock(),
            "counters": [{"name": k[0], "labels": _labels_dict(k),
                          "value": v} for k, v in counters],
            "gauges": [{"name": k[0], "labels": _labels_dict(k),
                        "value": v, "wall": w}
                       for k, (v, w) in gauges],
            "histograms": [{"name": k[0], "labels": _labels_dict(k), **h}
                           for k, h in hists],
            "events": events,
        }

    def flush(self, *, full: bool = False) -> dict | None:
        """Collect, cut a new delta, and return the wire payload: every
        un-acknowledged delta (oldest first) plus loss counters.

        Returns None when there is nothing at all to ship.  ``full``
        lifts the per-delta instrument cap (the ``telemetry.push``
        path)."""
        self.collect()
        with self._lock:
            limit = None if full else self.max_metrics
            delta = self._pop_pending(limit)
            if delta is not None:
                self._inflight.append(delta)
                while len(self._inflight) > self.max_inflight:
                    self._inflight.pop(0)
                    self.lost_deltas += 1
            if not self._inflight:
                return None
            return {
                "schema": DELTA_SCHEMA,
                "worker": self.worker,
                "deltas": [dict(d) for d in self._inflight],
                "lost_deltas": self.lost_deltas,
                "lost_events": self.lost_events,
                "clock_offset": self.clock_offset,
            }

    def commit(self, ack_seq) -> None:
        """Drop in-flight deltas the aggregator acknowledged (its last
        applied ``seq`` for this worker)."""
        if ack_seq is None:
            return
        ack = int(ack_seq)
        with self._lock:
            before = len(self._inflight)
            self._inflight = [d for d in self._inflight if d["seq"] > ack]
            self.shipped_deltas += before - len(self._inflight)

    @property
    def backlog(self) -> int:
        """Un-acknowledged deltas currently held."""
        return len(self._inflight)

    def stats(self) -> dict:
        return {
            "worker": self.worker,
            "seq": self._seq,
            "shipped_deltas": self.shipped_deltas,
            "inflight": len(self._inflight),
            "lost_deltas": self.lost_deltas,
            "lost_events": self.lost_events,
            "clock_offset": self.clock_offset,
        }


# ---------------------------------------------------------------------
# SLO / anomaly rules
# ---------------------------------------------------------------------
class SLORules:
    """Thresholds for the per-window anomaly scan.

    ``step_time_factor`` governs the §III-D regression rule: the cost
    model predicts *device* time, so absolute comparison with host wall
    clock is meaningless — instead each worker's observed/predicted
    ratio is compared against the fleet's median ratio over past
    windows, and a worker running ``step_time_factor``× slower than
    that self-calibrated baseline raises ``step-time-regression``.
    """

    def __init__(self, *, step_time_factor: float = 3.0,
                 min_baseline_windows: int = 4,
                 lease_expiry_spike: int = 3,
                 recovery_spike: int = 3,
                 recovery_kinds=("rollback", "fault-injected",
                                 "nan-detected")):
        self.step_time_factor = float(step_time_factor)
        self.min_baseline_windows = int(min_baseline_windows)
        self.lease_expiry_spike = int(lease_expiry_spike)
        self.recovery_spike = int(recovery_spike)
        self.recovery_kinds = tuple(recovery_kinds)


class _WorkerState:
    __slots__ = ("last_seq", "last_seen", "first_seen", "counters",
                 "steps_total", "steps_window", "step_seconds_window",
                 "lost_deltas", "lost_events", "clock_offset", "deltas",
                 "events_window")

    def __init__(self, now: float):
        self.last_seq = 0
        self.last_seen = now
        self.first_seen = now
        self.counters: dict[tuple, float] = {}
        self.steps_total = 0
        self.steps_window = 0
        self.step_seconds_window = 0.0
        self.lost_deltas = 0
        self.lost_events = 0
        self.clock_offset = 0.0
        self.deltas = 0
        self.events_window = 0


class FleetAggregator:
    """Merge worker deltas into campaign-wide rollups (coordinator side).

    ``root`` (optional) is the directory the windowed ``rollups.jsonl``
    and the alert/event journal live in — conventionally
    ``<campaign>/fleet/``, beside the queue journal, and persisted the
    same way (append, flush, fsync; loaders tolerate a torn final
    line).  Without a root the aggregator is purely in-memory.
    """

    def __init__(self, root=None, *, window_seconds: float = 2.0,
                 stale_after: float = 10.0, rules: SLORules | None = None,
                 clock=time.time):
        self.root = pathlib.Path(root) if root is not None else None
        self.window_seconds = float(window_seconds)
        self.stale_after = float(stale_after)
        self.rules = rules or SLORules()
        self.clock = clock
        self._lock = threading.RLock()
        self.counters: dict[tuple, float] = {}
        self.histograms: dict[tuple, dict] = {}
        self.gauges: dict[tuple, tuple] = {}  # (key, worker) -> (v, wall, w)
        self.workers: dict[str, _WorkerState] = {}
        self.alerts: dict[tuple, dict] = {}
        self.merge_conflicts = 0
        self.events_total = 0
        self.rollup_seq = 0
        self._window_events: list[dict] = []
        self._window_start = clock()
        self._window_counter_marks: dict[tuple, float] = {}
        self._ratio_history: list[float] = []
        self._locals: list[tuple[str, TelemetryShipper]] = []
        self._rollups_fh = None
        self._events_fh = None
        self._closed = False
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._rollups_fh = open(self.root / ROLLUPS_FILE, "a",
                                    encoding="utf-8")
            self._events_fh = open(self.root / FLEET_EVENTS_FILE, "a",
                                   encoding="utf-8")

    # -- local sources (the coordinator's own registry) -----------------
    def track_local(self, label: str, registry: MetricsRegistry) -> None:
        """Fold a local registry (e.g. the coordinator's own metrics:
        ``lease_expirations``, per-op request counters) into the rollup
        on every tick, as pseudo-worker ``label``."""
        shipper = TelemetryShipper(label, clock=self.clock)
        shipper.watch(registry)
        with self._lock:
            self._locals.append((label, shipper))

    # -- ingest ----------------------------------------------------------
    def ingest(self, payload: dict) -> int:
        """Apply one wire payload; returns the last applied ``seq`` for
        that worker (the ack the shipper commits against).  Deltas with
        ``seq`` at or below the ack are duplicates (RPC retries,
        retransmitted windows) and are skipped, so application is
        exactly-once per delta."""
        now = self.clock()
        with self._lock:
            worker = str(payload.get("worker", "?"))
            st = self.workers.get(worker)
            if st is None:
                st = self.workers[worker] = _WorkerState(now)
            st.last_seen = now
            st.lost_deltas = int(payload.get("lost_deltas", 0))
            st.lost_events = int(payload.get("lost_events", 0))
            st.clock_offset = float(payload.get("clock_offset", 0.0))
            for delta in payload.get("deltas", ()):
                if int(delta.get("seq", 0)) <= st.last_seq:
                    continue
                self._apply(worker, st, delta)
                st.last_seq = int(delta["seq"])
                st.deltas += 1
            self._maybe_roll(now)
            return st.last_seq

    def _apply(self, worker: str, st: _WorkerState, delta: dict) -> None:
        for c in delta.get("counters", ()):
            key = _key(c["name"], c.get("labels", {}))
            self.counters[key] = self.counters.get(key, 0.0) + c["value"]
            st.counters[key] = st.counters.get(key, 0.0) + c["value"]
        for g in delta.get("gauges", ()):
            key = _key(g["name"], g.get("labels", {}))
            self.gauges[(key, worker)] = merge_gauge(
                self.gauges.get((key, worker)), g["value"],
                g.get("wall", delta.get("wall", 0.0)), worker)
        for h in delta.get("histograms", ()):
            key = _key(h["name"], h.get("labels", {}))
            try:
                self.histograms[key] = merge_histogram(
                    self.histograms.get(key), h)
            except MergeConflict:
                self.merge_conflicts += 1
                continue
            if key == ("step_seconds", ()):
                st.steps_total += int(h["count"])
                st.steps_window += int(h["count"])
                st.step_seconds_window += float(h["sum"])
        for ev in delta.get("events", ()):
            rec = dict(ev)
            rec["worker"] = worker
            self.events_total += 1
            st.events_window += 1
            self._window_events.append(rec)
            if len(self._window_events) > 4096:
                del self._window_events[0]
            self._journal(rec)

    # -- persistence -----------------------------------------------------
    def _journal(self, rec: dict) -> None:
        if self._events_fh is None:
            return
        self._events_fh.write(
            json.dumps(rec, separators=(",", ":"), default=str) + "\n")
        self._events_fh.flush()

    def _persist_rollup(self, rollup: dict) -> None:
        if self._rollups_fh is None:
            return
        self._rollups_fh.write(
            json.dumps(rollup, separators=(",", ":"), default=str) + "\n")
        self._rollups_fh.flush()
        os.fsync(self._rollups_fh.fileno())

    # -- windows / rules -------------------------------------------------
    def _maybe_roll(self, now: float) -> None:
        if now - self._window_start >= self.window_seconds:
            self._roll(now)

    def tick(self, *, force: bool = False) -> dict | None:
        """Fold local sources and close the window when due (or forced).
        Returns the rollup written, if any."""
        with self._lock:
            for label, shipper in self._locals:
                payload = shipper.flush(full=True)
                if payload is not None:
                    st = self.workers.get(label)
                    seq_before = st.last_seq if st else 0
                    # local ingest must not recurse into tick's window
                    worker = label
                    st = self.workers.setdefault(
                        worker, _WorkerState(self.clock()))
                    st.last_seen = self.clock()
                    for delta in payload["deltas"]:
                        if int(delta["seq"]) <= st.last_seq:
                            continue
                        self._apply(worker, st, delta)
                        st.last_seq = int(delta["seq"])
                        st.deltas += 1
                    del seq_before
                    shipper.commit(st.last_seq)
            now = self.clock()
            if force or now - self._window_start >= self.window_seconds:
                return self._roll(now)
            return None

    def _counter_value(self, name: str, labels=()) -> float:
        return self.counters.get(_key(name, dict(labels)), 0.0)

    def _evaluate_rules(self, now: float, window_dt: float) -> None:
        firing: dict[tuple, dict] = {}
        rules = self.rules

        # 1. lease-expiry spike (coordinator counter, per window)
        key = _key("lease_expirations", {})
        total = self.counters.get(key, 0.0)
        mark = self._window_counter_marks.get(key, 0.0)
        if total - mark >= rules.lease_expiry_spike:
            firing[("lease-expiry-spike", "")] = {
                "value": total - mark,
                "message": f"{int(total - mark)} lease expirations in "
                           f"{window_dt:.1f}s",
            }
        self._window_counter_marks[key] = total

        # 2. recovery-event spike (rollbacks / NaN bursts)
        n_recovery = sum(1 for e in self._window_events
                         if e.get("kind") in rules.recovery_kinds)
        if n_recovery >= rules.recovery_spike:
            firing[("recovery-spike", "")] = {
                "value": n_recovery,
                "message": f"{n_recovery} recovery events "
                           f"({'/'.join(rules.recovery_kinds)}) in "
                           f"{window_dt:.1f}s",
            }

        # 3. degraded-mode entry (per worker, from the shipped gauge)
        for (key, worker), (value, _wall, _w) in self.gauges.items():
            if key == ("fabric_degraded", ()) and value:
                firing[("degraded-mode", worker)] = {
                    "value": value,
                    "message": f"worker {worker} fell back to direct "
                               f"file-queue mode",
                }

        # 4. step-time regression vs the §III-D prediction
        ratios = {}
        for worker, st in self.workers.items():
            if not st.steps_window:
                continue
            pred = self.gauges.get(
                (_key("job_predicted_step_seconds", {}), worker))
            if not pred or pred[0] <= 0.0:
                continue
            observed = st.step_seconds_window / st.steps_window
            ratios[worker] = observed / pred[0]
        baseline = (sorted(self._ratio_history)
                    [len(self._ratio_history) // 2]
                    if self._ratio_history else None)
        for worker, ratio in ratios.items():
            if (baseline is not None
                    and len(self._ratio_history)
                    >= rules.min_baseline_windows
                    and ratio > rules.step_time_factor * baseline):
                firing[("step-time-regression", worker)] = {
                    "value": ratio,
                    "message": (f"worker {worker} at {ratio:.1f}× the "
                                f"model (fleet baseline {baseline:.1f}×, "
                                f"factor {rules.step_time_factor})"),
                }
            self._ratio_history.append(ratio)
            if len(self._ratio_history) > 64:
                del self._ratio_history[0]

        # transitions → journal events + active-alert table
        for akey, info in firing.items():
            if akey not in self.alerts:
                rec = {"kind": "alert", "rule": akey[0], "worker": akey[1],
                       "wall": now, **info}
                self.alerts[akey] = rec
                self._journal(rec)
        for akey in [k for k in self.alerts if k not in firing]:
            rec = dict(self.alerts.pop(akey))
            rec.update(kind="alert-cleared", wall=now)
            self._journal(rec)

    def _roll(self, now: float) -> dict:
        window_dt = max(1e-9, now - self._window_start)
        self._evaluate_rules(now, window_dt)
        rollup = self._snapshot_locked(now, window_dt=window_dt)
        self.rollup_seq += 1
        rollup["seq"] = self.rollup_seq
        self._persist_rollup(rollup)
        for st in self.workers.values():
            st.steps_window = 0
            st.step_seconds_window = 0.0
            st.events_window = 0
        self._window_events.clear()
        self._window_start = now
        return rollup

    # -- read side -------------------------------------------------------
    def _snapshot_locked(self, now: float, *, window_dt=None) -> dict:
        if window_dt is None:
            window_dt = max(1e-9, now - self._window_start)
        hists = []
        for key, h in sorted(self.histograms.items()):
            entry = {"name": key[0], "labels": _labels_dict(key), **h}
            for q in ROLLUP_QUANTILES:
                entry[f"p{int(q * 100)}"] = quantile_from_dict(h, q)
            hists.append(entry)
        return {
            "schema": ROLLUP_SCHEMA,
            "wall": now,
            "window": [self._window_start, now],
            "counters": [{"name": k[0], "labels": _labels_dict(k),
                          "value": v}
                         for k, v in sorted(self.counters.items())],
            "gauges": [{"name": k[0], "labels": _labels_dict(k),
                        "worker": w, "value": v, "wall": wall}
                       for (k, w), (v, wall, _) in sorted(
                           self.gauges.items())],
            "histograms": hists,
            "workers": {
                w: {
                    "last_seen": st.last_seen,
                    "alive": (now - st.last_seen) <= self.stale_after,
                    "last_seq": st.last_seq,
                    "deltas": st.deltas,
                    "steps_total": st.steps_total,
                    "step_rate": st.steps_window / window_dt,
                    "lost_deltas": st.lost_deltas,
                    "lost_events": st.lost_events,
                    "clock_offset": st.clock_offset,
                    "degraded": bool(self.gauges.get(
                        (_key("fabric_degraded", {}), w),
                        (0.0, 0.0, w))[0]),
                }
                for w, st in sorted(self.workers.items())
            },
            "events_total": self.events_total,
            "events_window": len(self._window_events),
            "merge_conflicts": self.merge_conflicts,
            "alerts": sorted(self.alerts.values(),
                             key=lambda a: (a["rule"], a["worker"])),
        }

    def snapshot(self) -> dict:
        """The live rollup-shaped view (no persistence, no window reset)
        — what ``python -m repro.jobs top`` renders when attached."""
        with self._lock:
            return self._snapshot_locked(self.clock())

    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counter_value(name, labels.items())

    def close(self) -> dict | None:
        """Write the final window and close the files.  Idempotent."""
        with self._lock:
            if self._closed:
                return None
            rollup = self.tick(force=True)
            self._closed = True
            for fh in (self._rollups_fh, self._events_fh):
                if fh is not None:
                    fh.close()
            self._rollups_fh = self._events_fh = None
            return rollup


def load_rollups(path) -> list[dict]:
    """Parse a ``rollups.jsonl`` stream (torn final line tolerated —
    same reader discipline as metrics snapshots)."""
    return load_snapshots(path)


# ---------------------------------------------------------------------
# campaign-wide Perfetto assembly
# ---------------------------------------------------------------------
def _worker_offsets(root: pathlib.Path) -> dict[str, float]:
    """Per-worker clock offsets from the newest persisted rollup."""
    path = root / "fleet" / ROLLUPS_FILE
    if not path.exists():
        return {}
    rollups = load_rollups(path)
    if not rollups:
        return {}
    return {w: info.get("clock_offset", 0.0)
            for w, info in rollups[-1].get("workers", {}).items()}


def assemble_campaign_trace(root, *, out=None,
                            offsets: dict[str, float] | None = None) -> dict:
    """Merge every per-attempt ``trace.json`` under ``<root>/runs/`` into
    one Perfetto file with **one lane per worker**.

    Lanes are grouped by the worker name each attempt's ``meta.json``
    records; timestamps are clock-skew-normalised onto the earliest
    corrected wall epoch using the per-worker offsets the fleet rollup
    recorded (each worker's RPC-echo estimate against the coordinator),
    so spans from different hosts line up on one timeline.
    """
    root = pathlib.Path(root)
    if offsets is None:
        offsets = _worker_offsets(root)
    traces, labels, walls = [], [], []
    for trace_path in sorted(root.glob("runs/*/attempt-*/trace.json")):
        try:
            trace = json.loads(trace_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        meta_path = trace_path.parent / "meta.json"
        worker = ""
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                worker = str(meta.get("meta", {}).get("worker") or "")
            except (OSError, json.JSONDecodeError):
                pass
        worker = worker or trace_path.parent.parent.parent.name
        epoch = float(trace.get("otherData", {}).get("epoch_wall", 0.0))
        traces.append(trace)
        labels.append(worker)
        walls.append(epoch - offsets.get(worker, 0.0))
    if not traces:
        merged = merge_chrome_traces([])
    else:
        t_ref = min(walls)
        shifts = [(w - t_ref) * 1e6 for w in walls]
        merged = merge_chrome_traces(traces, labels=labels,
                                     shifts_us=shifts)
        merged.setdefault("otherData", {})["epoch_wall"] = t_ref
        merged["otherData"]["workers"] = sorted(set(labels))
    if out is not None:
        out = pathlib.Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged, separators=(",", ":")) + "\n",
                       encoding="utf-8")
    return merged


def sum_run_dir_counters(root) -> dict[tuple, float]:
    """Sum every counter across the *final* metrics snapshot of every
    attempt run dir under ``<root>/runs/`` — the per-worker ground truth
    the rollup equality check (fleet-demo, CI) compares against."""
    totals: dict[tuple, float] = {}
    for metrics_path in sorted(
            pathlib.Path(root).glob("runs/*/attempt-*/metrics.jsonl")):
        try:
            snaps = load_snapshots(metrics_path)
        except (OSError, json.JSONDecodeError):
            continue
        if not snaps:
            continue
        for m in snaps[-1].get("metrics", ()):
            if m.get("type") != "counter":
                continue
            value = m.get("value", 0.0)
            if isinstance(value, str) or not math.isfinite(value):
                continue
            key = _key(m["name"], m.get("labels", {}))
            totals[key] = totals.get(key, 0.0) + value
    return totals
