"""Continuous perf trajectory: a rolling store of bench profiles.

A single committed baseline JSON (PR 4's compare gate) answers "did
this change regress against one blessed run?" — but a fleet producing
bench reports continuously needs the longitudinal question: "is this
candidate slow against *recent history*?"  This module keeps an
append-only directory of normalised profiles (``benchmarks/history/``
by convention), each entry one small JSON file, and derives a rolling
baseline as the **per-phase median over the last N entries** — robust
to a single noisy run on either side of the comparison.

``python -m repro.telemetry history add/list`` maintains the store and
``python -m repro.telemetry compare --history DIR candidate`` gates a
candidate against the rolling baseline with the same per-phase
threshold semantics as the two-run compare.
"""

from __future__ import annotations

import json
import pathlib
import time

from .cli import compare_profiles, load_profile

#: schema identifier stamped into every history entry
HISTORY_SCHEMA = "repro-perf-history-v1"


def _median(values: list[float]) -> float:
    vs = sorted(values)
    n = len(vs)
    mid = n // 2
    return vs[mid] if n % 2 else 0.5 * (vs[mid - 1] + vs[mid])


def add_entry(history_dir, source, *, label: str | None = None,
              wall: float | None = None) -> pathlib.Path:
    """Normalise ``source`` (run dir / bench JSON / profile) and append
    it to the history directory as the next numbered entry."""
    history_dir = pathlib.Path(history_dir)
    history_dir.mkdir(parents=True, exist_ok=True)
    profile = load_profile(source)
    seq = 0
    for existing in history_dir.glob("*.json"):
        head = existing.name.split("-", 1)[0]
        if head.isdigit():
            seq = max(seq, int(head) + 1)
    name = label or profile.get("label") or profile.get("kind") or "entry"
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
    path = history_dir / f"{seq:06d}-{safe}.json"
    entry = {
        "schema": HISTORY_SCHEMA,
        "seq": seq,
        "wall": time.time() if wall is None else float(wall),
        "label": name,
        "profile": profile,
    }
    path.write_text(json.dumps(entry, indent=2, default=str) + "\n",
                    encoding="utf-8")
    return path


def load_history(history_dir) -> list[dict]:
    """All entries, oldest first (numbered-file order); unreadable or
    foreign JSON files are skipped rather than fatal."""
    entries = []
    history_dir = pathlib.Path(history_dir)
    if not history_dir.is_dir():
        return entries
    for path in sorted(history_dir.glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if entry.get("schema") != HISTORY_SCHEMA:
            continue
        entry["path"] = str(path)
        entries.append(entry)
    return entries


def rolling_baseline(entries: list[dict], *, window: int = 8) -> dict:
    """A synthetic profile: per-phase (and per-step) **median** over the
    last ``window`` entries — the baseline ``compare --history`` gates
    against.  Raises ValueError on an empty history."""
    if not entries:
        raise ValueError("perf history is empty — run `history add` first")
    recent = entries[-window:]
    phases: dict[str, list[float]] = {}
    steps: list[float] = []
    for entry in recent:
        prof = entry.get("profile", {})
        for ph, v in prof.get("phases", {}).items():
            if v is not None:
                phases.setdefault(ph, []).append(float(v))
        sps = prof.get("sec_per_step")
        if sps:
            steps.append(float(sps))
    return {
        "source": f"history[{len(recent)} of {len(entries)} entries]",
        "kind": "history-baseline",
        "window": len(recent),
        "phases": {ph: _median(vs) for ph, vs in phases.items()},
        "sec_per_step": _median(steps) if steps else None,
    }


def compare_to_history(history_dir, candidate, *, threshold: float = 0.1,
                       window: int = 8) -> dict:
    """Gate ``candidate`` (run dir / bench JSON / profile) against the
    rolling median baseline of ``history_dir``."""
    baseline = rolling_baseline(load_history(history_dir), window=window)
    return compare_profiles(baseline, load_profile(candidate),
                            threshold=threshold)


def render_history(entries: list[dict]) -> str:
    """One line per entry: seq, label, step time, phase count."""
    if not entries:
        return "(empty history)"
    lines = [f"{'seq':>6} {'label':<24} {'sec/step':>12} {'phases':>7}"]
    for entry in entries:
        prof = entry.get("profile", {})
        sps = prof.get("sec_per_step")
        lines.append(
            f"{entry.get('seq', 0):>6} {entry.get('label', '?'):<24} "
            f"{sps:>12.5f}" if sps else
            f"{entry.get('seq', 0):>6} {entry.get('label', '?'):<24} "
            f"{'-':>12}"
        )
        lines[-1] += f" {len(prof.get('phases', {})):>7}"
    return "\n".join(lines)
