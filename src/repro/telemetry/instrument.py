"""Samplers turning live solver objects into registry metrics.

These are the glue between the subsystems and the
:class:`~repro.telemetry.MetricsRegistry`: each function reads one layer
(mesh structure, buffer pool, communicator, load balance, physics
diagnostics) and publishes gauges/counters under stable metric names.
:meth:`repro.telemetry.TelemetrySink.on_step` calls them on its
configured cadences; tests and ad-hoc scripts call them directly.

Metric name conventions (all seconds/bytes are SI, labels in braces):

===========================  ========  =================================
``phase_seconds{phase}``      histogram  per-step time in one Alg.-1 phase
``step_seconds``              histogram  wall time of one full RK4 step
``steps_total``               counter    steps sampled so far
``octants_total``             gauge      octants in the current mesh
``octants{level}``            gauge      octants per refinement level
``pool_bytes`` / ``pool_buffers``  gauge  arena footprint
``halo_bytes|messages{src,dst}``  counter  per-edge halo traffic
``halo_retries{src,dst}``     counter    re-requested ghost messages
``comm_bytes_total``          gauge      communicator lifetime traffic
``load_imbalance``            gauge      max/mean predicted rank work
``constraint{name}``          gauge      latest constraint norm
``psi4_amplitude{radius}``    gauge      |Ψ₄ (2,2)| at an extraction radius
``rollbacks_total`` etc.      counter    supervisor recovery events
``gpu_flops|bytes|seconds{kernel}``  counter  virtual-GPU launch totals
===========================  ========  =================================
"""

from __future__ import annotations

import numpy as np

from .metrics import MetricsRegistry


def sample_mesh(metrics: MetricsRegistry, mesh) -> None:
    """Mesh structure: total octants, octants per level, finest dx."""
    metrics.gauge("octants_total").set(mesh.num_octants)
    levels = mesh.tree.levels
    for lv in np.unique(levels):
        metrics.gauge("octants", level=int(lv)).set(
            int((levels == lv).sum())
        )
    metrics.gauge("min_dx").set(mesh.min_dx)


def sample_pool(metrics: MetricsRegistry, solver) -> None:
    """Workspace arena footprint (pooled solvers only)."""
    ws = getattr(solver, "_workspace", None)
    pool = getattr(ws, "pool", None)
    if pool is None:
        return
    metrics.gauge("pool_bytes").set(pool.nbytes)
    metrics.gauge("pool_buffers").set(pool.num_buffers)


def sample_comm(metrics: MetricsRegistry, solver) -> None:
    """Communicator traffic and predicted load imbalance (distributed
    drivers only; single-rank solvers are a no-op)."""
    comm = getattr(solver, "comm", None)
    if comm is not None and hasattr(comm, "total_bytes"):
        metrics.gauge("comm_bytes_total").set(comm.total_bytes())
    partition = getattr(solver, "partition", None)
    if partition is not None:
        from repro.parallel.loadbalance import predicted_imbalance

        metrics.gauge("load_imbalance").set(
            predicted_imbalance(solver.mesh, partition)
        )
        for rank in range(partition.num_parts):
            metrics.gauge("octants_owned", rank=rank).set(
                int(partition.offsets[rank + 1] - partition.offsets[rank])
            )


def sample_physics(metrics: MetricsRegistry, solver) -> None:
    """Physics diagnostics: constraint norms (BSSN) and the newest
    |Ψ₄|/|φ| (2,2)-mode amplitude of an attached extractor.

    This costs a constraint evaluation over the whole mesh — run it on
    its own (coarser) cadence, never every step.
    """
    if hasattr(solver, "constraints"):
        for name, value in solver.constraints().items():
            metrics.gauge("constraint", name=name).set(value)
    extractor = getattr(solver, "extractor", None)
    if extractor is not None:
        for radius, rec in extractor.records.items():
            try:
                _, coeffs = rec.series(2, 2)
            except (KeyError, ValueError):
                continue
            if len(coeffs):
                metrics.gauge("psi4_amplitude", radius=float(radius)).set(
                    float(np.abs(coeffs[-1]))
                )


def sample_solver(metrics: MetricsRegistry, solver) -> None:
    """The cheap per-cadence sample: mesh + pool + comm (physics has its
    own cadence — see :func:`sample_physics`)."""
    mesh = getattr(solver, "mesh", None)
    if mesh is not None:
        sample_mesh(metrics, mesh)
    sample_pool(metrics, solver)
    sample_comm(metrics, solver)


def sample_supervisor(metrics: MetricsRegistry, run) -> None:
    """Recovery statistics of a :class:`repro.resilience.SupervisedRun`."""
    metrics.gauge("rollbacks_total").set(run.rollbacks)
    metrics.gauge("flagged_steps_total").set(len(run.flagged_steps))
    metrics.gauge("courant").set(float(run.solver.courant))


def instrument_solver(solver, sink, *, record_samples: bool = True):
    """Attach a sink-wired profiler to a solver (if it has none) and
    return the profiler actually in use."""
    prof = getattr(solver, "profiler", None)
    if prof is None:
        prof = sink.profiler(record_samples=record_samples)
        solver.profiler = prof
    return prof
