"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Every subsystem publishes into one :class:`MetricsRegistry` — per-phase
latencies and steps/sec from the profiler, halo bytes/messages per edge
from the exchange, octants per level from the mesh, pool bytes from the
arena, rollback counts from the supervisor, constraint norms and Ψ₄
amplitude from the physics samplers, flop/byte totals from the virtual
GPU.  Instruments are keyed by ``(name, labels)`` so the same metric
family can carry per-phase / per-edge / per-level series.

Snapshots are plain JSON-able dicts and round-trip losslessly through
:func:`write_snapshot` / :func:`load_snapshots` /
:func:`registry_from_snapshot` — the JSONL snapshot stream in a run
directory is the on-disk ground truth ``summarize``/``compare`` consume.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from bisect import bisect_left

#: schema identifier stamped into every snapshot line
METRICS_SCHEMA = "repro-metrics-v1"

#: default latency bucket upper edges (seconds): 1 µs · 2^k for
#: k = 0..25, i.e. 1 µs … ~33.6 s, plus the implicit +inf overflow bucket
DEFAULT_LATENCY_BUCKETS = tuple(1e-6 * 2.0**k for k in range(26))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += float(amount)

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-written value (octant count, pool bytes, constraint norm...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram over ``edges`` (upper bounds, inclusive).

    Bucket ``i`` counts observations in ``(edges[i-1], edges[i]]`` — a
    value landing exactly on an edge goes into the bucket whose upper
    bound it equals; anything above the last edge lands in the overflow
    bucket ``counts[len(edges)]``.  Sum/count/min/max ride along so means
    survive without the raw samples.
    """

    __slots__ = ("edges", "counts", "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, edges=DEFAULT_LATENCY_BUCKETS):
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be non-empty and strictly increasing")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += 1
        self.sum += v
        self.count += 1
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile interpolated from the fixed buckets
        (see :func:`quantile_from_dict`); None when empty."""
        return quantile_from_dict(self.to_dict(), q)

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


def quantile_from_dict(hist: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of a histogram snapshot dict.

    The estimate assumes observations are uniform within each bucket
    (the standard fixed-bucket interpolation): walk the cumulative
    counts to the bucket holding rank ``q * count``, then interpolate
    linearly between its lower and upper edge.  The observed min/max
    clamp the result, so a one-sample histogram reports that sample for
    every quantile and the overflow bucket cannot extrapolate past the
    true maximum.  Returns None for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = hist.get("count", 0)
    if not total:
        return None
    edges = hist["edges"]
    counts = hist["counts"]
    lo = hist.get("min")
    hi = hist.get("max")
    rank = q * total
    cum = 0
    for i, c in enumerate(counts):
        if not c:
            continue
        if cum + c >= rank:
            lower = edges[i - 1] if i > 0 else (
                lo if lo is not None else 0.0)
            upper = edges[i] if i < len(edges) else (
                hi if hi is not None else edges[-1])
            frac = (rank - cum) / c
            value = lower + frac * (upper - lower)
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
        cum += c
    return hi


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by name + labels."""

    def __init__(self):
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name, labels: dict, **kwargs):
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(**kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name}{labels} already registered as {inst.kind}"
            )
        return inst

    # the metric name is positional-only so labels may themselves be
    # called ``name`` (e.g. constraint{name="ham"})
    def counter(self, name: str, /, **labels) -> Counter:
        """The counter for ``(name, labels)``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        """The gauge for ``(name, labels)``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, /, buckets=DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        """The histogram for ``(name, labels)`` (``buckets`` applies only
        on first creation)."""
        return self._get(Histogram, name, labels, edges=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    def get(self, name: str, /, **labels):
        """The instrument for ``(name, labels)``, or None."""
        return self._instruments.get(_key(name, labels))

    def family(self, name: str) -> dict[tuple, object]:
        """All instruments of one metric family, keyed by label tuple."""
        return {k[1]: v for k, v in self._instruments.items() if k[0] == name}

    # -- (de)serialisation ---------------------------------------------
    def snapshot(self, *, step=None, wall=None) -> dict:
        """The registry as one JSON-able snapshot object."""
        return {
            "schema": METRICS_SCHEMA,
            "wall": time.time() if wall is None else wall,
            "step": step,
            "metrics": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "type": inst.kind,
                    **inst.to_dict(),
                }
                for (name, labels), inst in self
            ],
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot (exact round-trip)."""
        reg = cls()
        for m in snap["metrics"]:
            kind, labels = m["type"], m.get("labels", {})
            if kind == "counter":
                reg.counter(m["name"], **labels).value = m["value"]
            elif kind == "gauge":
                reg.gauge(m["name"], **labels).value = m["value"]
            elif kind == "histogram":
                h = reg.histogram(m["name"], buckets=m["edges"], **labels)
                h.counts = list(m["counts"])
                h.sum = m["sum"]
                h.count = m["count"]
                h.min = m["min"] if m["min"] is not None else math.inf
                h.max = m["max"] if m["max"] is not None else -math.inf
            else:
                raise ValueError(f"unknown metric type {kind!r}")
        return reg


def write_snapshot(fh, registry: MetricsRegistry, *, step=None,
                   wall=None) -> dict:
    """Append one snapshot line to an open JSONL stream; returns it."""
    snap = registry.snapshot(step=step, wall=wall)
    fh.write(json.dumps(snap, separators=(",", ":"), default=_finite) + "\n")
    fh.flush()
    return snap


def _finite(value):
    """JSON fallback: NaN/Inf (no JSON representation) become strings."""
    return str(value)


def load_snapshots(path) -> list[dict]:
    """Parse a ``metrics.jsonl`` stream (torn final line tolerated)."""
    snaps: list[dict] = []
    lines = pathlib.Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            snaps.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue  # torn final line: crash mid-write
            raise
    return snaps


def registry_from_snapshot(snap: dict) -> MetricsRegistry:
    """Module-level alias of :meth:`MetricsRegistry.from_snapshot`."""
    return MetricsRegistry.from_snapshot(snap)
