"""The unified telemetry sink: one run, one self-describing directory.

A :class:`TelemetrySink` owns the three recorders every subsystem
publishes into — a :class:`~repro.telemetry.Tracer` (nested spans), a
:class:`~repro.telemetry.MetricsRegistry` (counters/gauges/histograms),
and an append-only JSONL event stream sharing the
:class:`repro.resilience.RunJournal` schema (``seq``/``kind``/``wall``
plus caller fields).  With a ``run_dir`` the sink materialises the run
as::

    run_dir/
      meta.json       # schema versions, label, wall-clock epoch, extras
      trace.json      # Chrome trace events (open in Perfetto)
      metrics.jsonl   # periodic registry snapshots, one JSON per line
      events.jsonl    # unified event stream (recovery, regrid, launches)

``meta.json`` is written at construction (a crashed run still
self-describes) and refreshed by :meth:`finalize`, which also exports
the trace and a final metrics snapshot.  Without a ``run_dir`` the sink
is purely in-memory — tests and ad-hoc instrumentation use it the same
way.

A disabled sink (``enabled=False``) disables the tracer but keeps the
metrics/event plumbing importable and inert, so call sites never branch.
"""

from __future__ import annotations

import json
import pathlib
import time

from .metrics import METRICS_SCHEMA, MetricsRegistry, write_snapshot
from .tracer import TRACE_SCHEMA, Tracer

#: schema identifier of the run-directory layout / event stream
RUN_SCHEMA = "repro-telemetry-run-v1"

#: file names inside a run directory
TRACE_FILE = "trace.json"
METRICS_FILE = "metrics.jsonl"
EVENTS_FILE = "events.jsonl"
META_FILE = "meta.json"


def _jsonable(value):
    """Coerce numpy scalars/arrays and paths to JSON-serialisable types
    (same policy as :mod:`repro.resilience.journal`)."""
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, pathlib.Path):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


class TelemetrySink:
    """One telemetry endpoint for a whole run.

    Parameters
    ----------
    run_dir:
        Output directory (created); None keeps everything in memory.
    enabled:
        ``False`` turns the tracer off (true no-op spans) while leaving
        metrics/events functional but unused by the hot path.
    trace_capacity:
        Ring-buffer size of the tracer, in records.
    metrics_every:
        Steps between automatic metrics snapshots in :meth:`on_step`
        (0 = only the final snapshot).
    physics_every:
        Steps between physics samples (constraint norms, Ψ₄ amplitude)
        in :meth:`on_step`; 0 disables them (they cost a constraint
        evaluation, which is far from free).
    label / meta:
        Human-readable run label and extra JSON-able metadata recorded
        in ``meta.json``.
    """

    def __init__(self, run_dir=None, *, enabled: bool = True,
                 trace_capacity: int = 65536, metrics_every: int = 10,
                 physics_every: int = 0, label: str = "run",
                 meta: dict | None = None, rank: int = 0):
        self.run_dir = pathlib.Path(run_dir) if run_dir is not None else None
        self.enabled = bool(enabled)
        self.label = label
        self.metrics_every = int(metrics_every)
        self.physics_every = int(physics_every)
        self.tracer = Tracer(enabled=self.enabled, capacity=trace_capacity,
                             tid=rank)
        self.metrics = MetricsRegistry()
        self.events: list[dict] = []
        self._seq = 0
        self._steps_seen = 0
        self._events_fh = None
        self._metrics_fh = None
        self._meta = dict(meta) if meta else {}
        self._finalized = False
        self._listeners: list = []
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._events_fh = open(self.run_dir / EVENTS_FILE, "a",
                                   encoding="utf-8")
            self._metrics_fh = open(self.run_dir / METRICS_FILE, "a",
                                    encoding="utf-8")
            self._write_meta()

    # -- events ---------------------------------------------------------
    def add_listener(self, fn) -> None:
        """Register ``fn(record)`` to observe every event as it is
        recorded — the hook fleet telemetry shipping uses to forward
        recovery events to the coordinator.  Listener errors are
        swallowed (telemetry must never take the run down)."""
        self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        """Drop a previously registered listener (no-op if absent)."""
        self._listeners = [f for f in self._listeners if f is not fn]

    def event(self, kind: str, **fields) -> dict:
        """Record one event (RunJournal schema) and mirror it onto the
        trace timeline as an instant marker."""
        rec = {"seq": self._seq, "kind": kind, "wall": time.time()}
        rec.update({k: _jsonable(v) for k, v in fields.items()})
        self._seq += 1
        self.events.append(rec)
        if self._events_fh is not None:
            self._events_fh.write(
                json.dumps(rec, separators=(",", ":"), default=str) + "\n"
            )
            self._events_fh.flush()
        self.tracer.instant(kind, cat="event",
                            args={k: v for k, v in rec.items()
                                  if k not in ("seq", "wall")})
        for fn in self._listeners:
            try:
                fn(rec)
            except Exception:
                pass
        return rec

    # -- adapters -------------------------------------------------------
    def profiler(self, *, record_samples: bool = True):
        """A :class:`repro.perf.StepProfiler` wired into this sink's
        tracer and metrics (per-phase latency histograms)."""
        from repro.perf import StepProfiler  # local: perf imports telemetry

        return StepProfiler(enabled=self.enabled, tracer=self.tracer,
                            metrics=self.metrics,
                            record_samples=record_samples)

    def journal(self, path=None):
        """A :class:`repro.resilience.RunJournal` whose events also flow
        through this sink (they appear on the Perfetto timeline)."""
        from repro.resilience import RunJournal  # local: avoid cycle

        return RunJournal(path, sink=self)

    # -- periodic sampling ----------------------------------------------
    def on_step(self, solver) -> None:
        """Per-step hook for run loops: cadenced metrics snapshots and
        physics samples (see ``metrics_every`` / ``physics_every``)."""
        self._steps_seen += 1
        step = getattr(solver, "step_count", self._steps_seen)
        if self.physics_every and self._steps_seen % self.physics_every == 0:
            from .instrument import sample_physics

            sample_physics(self.metrics, solver)
        if self.metrics_every and self._steps_seen % self.metrics_every == 0:
            from .instrument import sample_solver

            sample_solver(self.metrics, solver)
            self.snapshot_metrics(step=step)

    def snapshot_metrics(self, *, step=None) -> dict:
        """Write one metrics snapshot line (in-memory dict if no dir)."""
        if self._metrics_fh is not None:
            return write_snapshot(self._metrics_fh, self.metrics, step=step)
        return self.metrics.snapshot(step=step)

    # -- lifecycle ------------------------------------------------------
    def _write_meta(self, extra: dict | None = None) -> None:
        meta = {
            "schema": RUN_SCHEMA,
            "trace_schema": TRACE_SCHEMA,
            "metrics_schema": METRICS_SCHEMA,
            "label": self.label,
            "created_wall": self.tracer.epoch_wall,
            "metrics_every": self.metrics_every,
            "physics_every": self.physics_every,
            "meta": _jsonable(self._meta),
        }
        if extra:
            meta.update(extra)
        (self.run_dir / META_FILE).write_text(
            json.dumps(meta, indent=2, default=str) + "\n", encoding="utf-8"
        )

    def finalize(self, solver=None, **extra_meta) -> "pathlib.Path | None":
        """Flush everything: final solver sample + metrics snapshot,
        trace.json export, refreshed meta.json.  Idempotent."""
        if self._finalized:
            return self.run_dir
        self._finalized = True
        if solver is not None:
            from .instrument import sample_solver

            sample_solver(self.metrics, solver)
        step = getattr(solver, "step_count", None)
        self.snapshot_metrics(step=step)
        if self.run_dir is not None:
            trace = self.tracer.to_chrome(label=self.label)
            (self.run_dir / TRACE_FILE).write_text(
                json.dumps(trace, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            self._write_meta({
                "finalized_wall": time.time(),
                "events": len(self.events),
                "trace_records": len(self.tracer),
                "trace_dropped": self.tracer.dropped,
                **_jsonable(extra_meta),
            })
            self._events_fh.close()
            self._events_fh = None
            self._metrics_fh.close()
            self._metrics_fh = None
        return self.run_dir

    def close(self) -> None:
        """Alias of :meth:`finalize` without a solver sample."""
        self.finalize()

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc) -> None:
        self.finalize()


def read_events(path) -> list[dict]:
    """Parse an ``events.jsonl`` stream (delegates to the journal reader,
    which tolerates a torn final line)."""
    from repro.resilience.journal import read_journal

    return read_journal(path)
