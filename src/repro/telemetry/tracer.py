"""Hierarchical tracing: nested spans in a preallocated ring buffer.

A :class:`Tracer` records *spans* — named, timed regions that nest
(step → RK4 stage → unzip/deriv/algebra/boundary/zip/axpy → halo
exchange) — and *instants* (rollbacks, regrids, kernel launches) into a
bounded ring buffer.  The buffer is preallocated at construction: a
steady-state run appends O(1) small records per span and never grows the
trace without bound; once full, the oldest records are overwritten and
``dropped`` counts what was lost.

Disabled tracers are a true no-op: :meth:`Tracer.span` returns one
shared :func:`~contextlib.nullcontext` and :meth:`begin`/:meth:`end`/
:meth:`instant` return immediately, so hot paths pay one attribute check.

The export format is Chrome trace-event JSON (``{"traceEvents": [...]}``
with ``"ph": "X"`` complete events and ``"ph": "i"`` instants), which
loads directly in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Nesting is expressed the way those tools expect:
events on the same pid/tid nest by time containment.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext

#: schema identifier stamped into exported traces
TRACE_SCHEMA = "repro-trace-v1"

_NULL = nullcontext()

# record layout indices (plain tuples keep the ring cheap)
_PH, _NAME, _CAT, _TS, _DUR, _DEPTH, _ARGS = range(7)


class _SpanCtx:
    """Context-manager wrapper over :meth:`Tracer.begin`/:meth:`Tracer.end`.

    One instance per ``span()`` call on the *enabled* path, so nested and
    re-entrant spans (same name opened twice) each carry their own frame.
    """

    __slots__ = ("tracer", "name", "cat", "args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        self.tracer.begin(self.name, self.cat, self.args)
        return self

    def __exit__(self, *exc):
        self.tracer.end()
        return False


class Tracer:
    """Nested-span recorder with a fixed-capacity ring buffer.

    Parameters
    ----------
    enabled:
        ``False`` makes every recording method a no-op (hot paths keep a
        single attribute check; see the overhead test).
    capacity:
        Ring size in records.  The buffer list is allocated once here.
    clock:
        Monotonic time source (seconds); ``time.perf_counter`` default.
    pid / tid:
        Chrome trace process/thread ids — distributed drivers use
        ``tid=rank`` so each rank gets its own swim-lane.
    """

    def __init__(self, enabled: bool = True, capacity: int = 65536,
                 clock=time.perf_counter, *, pid: int = 0, tid: int = 0):
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self.clock = clock
        self.pid = int(pid)
        self.tid = int(tid)
        #: preallocated ring slots (records are small tuples)
        self._buf: list = [None] * self.capacity
        self._head = 0          # next write index
        self._count = 0         # records currently held (<= capacity)
        self.dropped = 0        # records overwritten after wraparound
        self._stack: list = []  # open-span frames (name, cat, t0, args)
        #: pairing of the monotonic clock with wall time, for meta.json
        self.epoch_wall = time.time()
        self.epoch_clock = clock()

    # -- recording ------------------------------------------------------
    def span(self, name: str, cat: str = "region", args: dict | None = None):
        """Context manager recording one nested span (no-op if disabled)."""
        if not self.enabled:
            return _NULL
        return _SpanCtx(self, name, cat, args)

    def begin(self, name: str, cat: str = "region",
              args: dict | None = None) -> None:
        """Open a span (explicit form; prefer :meth:`span` outside hot
        paths).  Spans must close LIFO via :meth:`end`."""
        if not self.enabled:
            return
        self._stack.append((name, cat, self.clock(), args))

    def end(self, args: dict | None = None) -> None:
        """Close the innermost open span; ``args`` merge over begin's."""
        if not self.enabled:
            return
        t1 = self.clock()
        name, cat, t0, a0 = self._stack.pop()
        if args:
            a0 = {**a0, **args} if a0 else dict(args)
        self._record(("X", name, cat, t0, t1 - t0, len(self._stack), a0))

    def instant(self, name: str, cat: str = "event",
                args: dict | None = None) -> None:
        """Record a zero-duration marker (rollback, regrid, launch...)."""
        if not self.enabled:
            return
        self._record(("i", name, cat, self.clock(), 0.0,
                      len(self._stack), args))

    def _record(self, rec: tuple) -> None:
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._buf[self._head] = rec
        self._head = (self._head + 1) % self.capacity

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def open_spans(self) -> int:
        """Depth of the currently-open span stack."""
        return len(self._stack)

    def records(self) -> list[tuple]:
        """Held records, oldest first (ring order restored)."""
        if self._count < self.capacity:
            return [r for r in self._buf[: self._count]]
        return self._buf[self._head :] + self._buf[: self._head]

    def reset(self) -> None:
        """Drop all records and any open spans."""
        self._buf = [None] * self.capacity
        self._head = 0
        self._count = 0
        self.dropped = 0
        self._stack.clear()

    # -- export ---------------------------------------------------------
    def to_chrome(self, *, label: str = "repro") -> dict:
        """The trace as a Chrome trace-event JSON object.

        Timestamps are microseconds since the tracer's epoch; complete
        spans use ``"ph": "X"`` (Perfetto nests same-tid events by time
        containment), instants use ``"ph": "i"`` with thread scope.
        """
        t0 = self.epoch_clock
        events: list[dict] = [
            {"ph": "M", "name": "process_name", "pid": self.pid, "tid": self.tid,
             "args": {"name": label}},
        ]
        for rec in self.records():
            ev = {
                "ph": rec[_PH],
                "name": rec[_NAME],
                "cat": rec[_CAT],
                "ts": (rec[_TS] - t0) * 1e6,
                "pid": self.pid,
                "tid": self.tid,
            }
            if rec[_PH] == "X":
                ev["dur"] = rec[_DUR] * 1e6
            else:
                ev["s"] = "t"
            if rec[_ARGS]:
                ev["args"] = dict(rec[_ARGS])
            events.append(ev)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "epoch_wall": self.epoch_wall,
                "dropped": self.dropped,
            },
        }


def merge_chrome_traces(traces: list[dict], *, labels=None,
                        shifts_us=None) -> dict:
    """Merge several exported traces into one viewable file.

    Lanes (Chrome trace *processes*) get stable identities: each trace
    is assigned to a lane keyed by its explicit ``labels[i]`` entry, or
    — when ``labels`` is omitted — by its ``(pid, process_name)`` pair,
    so the same rank/worker id appearing in multiple input traces (two
    attempts by worker ``w0``) lands on **one** lane, while distinct
    workers that both exported with ``pid=0`` are remapped onto
    separate lanes instead of clashing.  Identical metadata events are
    deduplicated; with explicit ``labels`` one ``process_name`` record
    per lane replaces the inputs' own.

    ``shifts_us[i]`` (microseconds) is added to every timed event of
    trace ``i`` — the hook campaign assembly uses to clock-skew-align
    traces from different hosts.  ``otherData`` comes from the first
    trace.
    """
    if not traces:
        return {"traceEvents": [], "otherData": {"schema": TRACE_SCHEMA}}
    explicit = labels is not None
    if explicit and len(labels) != len(traces):
        raise ValueError("labels must match traces 1:1")
    if shifts_us is not None and len(shifts_us) != len(traces):
        raise ValueError("shifts_us must match traces 1:1")
    out = {k: v for k, v in traces[0].items() if k != "traceEvents"}

    def lane_of(i: int, tr: dict) -> str:
        if explicit:
            return str(labels[i])
        for ev in tr.get("traceEvents", ()):
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                return str(ev.get("args", {}).get("name", ""))
        return ""

    pid_of: dict = {}
    used: set = set()

    def assign(key, want: int) -> int:
        pid = pid_of.get(key)
        if pid is None:
            pid = int(want)
            while pid in used:
                pid += 1
            pid_of[key] = pid
            used.add(pid)
        return pid

    events: list[dict] = []
    seen_meta: set[str] = set()
    lane_names: dict[int, str] = {}
    for i, tr in enumerate(traces):
        lane = lane_of(i, tr)
        shift = float(shifts_us[i]) if shifts_us is not None else 0.0
        if explicit:
            lane_names[assign(lane, len(pid_of))] = lane
        for ev in tr.get("traceEvents", ()):
            src_pid = ev.get("pid", 0)
            key = lane if explicit else (src_pid, lane)
            pid = assign(key, len(pid_of) if explicit else src_pid)
            merged = dict(ev)
            merged["pid"] = pid
            if merged.get("ph") == "M":
                if explicit and merged.get("name") == "process_name":
                    continue  # replaced by the per-lane record below
                fp = json.dumps(merged, sort_keys=True, default=str)
                if fp in seen_meta:
                    continue
                seen_meta.add(fp)
            elif shift:
                merged["ts"] = merged.get("ts", 0.0) + shift
            events.append(merged)
    meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for pid, name in sorted(lane_names.items())
    ]
    out["traceEvents"] = meta + events
    return out
