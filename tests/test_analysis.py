"""Tests for the Table I / Table IV estimators."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE4,
    estimate_octants,
    estimate_production_run,
    table1,
    table4,
)


class TestTable1:
    def test_rows(self):
        rows = table1()
        assert [r.q for r in rows] == [1, 4, 16, 64, 256, 512]
        # finest resolution shrinks with q, coarse saturates near 1.65e-2
        dxs = [r.dx_small for r in rows]
        assert all(a > b for a, b in zip(dxs, dxs[1:]))
        assert rows[-1].dx_large == pytest.approx(1.65e-2, rel=0.02)

    def test_timestep_blowup(self):
        """The punchline of Table I: q=512 needs ~2e4 x more steps than
        q=1."""
        rows = {r.q: r for r in table1()}
        assert rows[512].timesteps / rows[1].timesteps > 1e4


class TestTable4:
    def test_octant_estimate_monotone_in_depth(self):
        assert estimate_octants(1e-3) >= estimate_octants(1e-2)
        assert estimate_octants(1.62e-2) > 1e5  # production scale

    def test_walltime_shape(self):
        """Shape claims: tens-to-hundreds of hours, monotone in q, and
        q=8 by far the most expensive (paper: 87/96/129/388 h)."""
        rows = table4()
        hours = [est.wall_hours for _, est in rows]
        assert all(a <= b * 1.05 for a, b in zip(hours, hours[1:]))
        assert 5.0 < hours[0] < 400.0
        assert hours[3] > 2.0 * hours[1]
        # within ~4x of the paper's absolute numbers
        for paper, est in rows:
            assert paper["hours"] / 4.0 < est.wall_hours < paper["hours"] * 4.0

    def test_timesteps_near_paper(self):
        for paper, est in table4():
            assert est.timesteps == pytest.approx(paper["steps"], rel=0.45)

    def test_estimate_production_run_fields(self):
        est = estimate_production_run(1.0, 1.62e-2, 4, 748.0)
        assert est.gpus == 4
        assert est.step_seconds > 0
        assert est.octants > 0


class TestConvergenceTools:
    def _solutions(self, p=4.0, r=2.0):
        """Manufactured solutions u_h = u + C h^p on three grids."""
        rng = np.random.default_rng(0)
        u = rng.normal(size=50)
        C = rng.normal(size=50)
        h = 1.0
        return (
            u + C * h**p,
            u + C * (h / r) ** p,
            u + C * (h / r**2) ** p,
            u,
        )

    def test_observed_order(self):
        from repro.analysis import observed_order

        c, m, f, _ = self._solutions(p=4.0)
        assert observed_order(c, m, f) == pytest.approx(4.0, abs=1e-10)
        c, m, f, _ = self._solutions(p=6.0)
        assert observed_order(c, m, f) == pytest.approx(6.0, abs=1e-8)

    def test_richardson_recovers_continuum(self):
        from repro.analysis import richardson_extrapolate

        c, m, f, u = self._solutions(p=4.0)
        ex = richardson_extrapolate(m, f, 4.0)
        assert np.allclose(ex, u, atol=1e-12)

    def test_analyze_triplet(self):
        from repro.analysis import analyze_triplet

        c, m, f, u = self._solutions(p=4.0)
        res = analyze_triplet(c, m, f)
        assert res.order == pytest.approx(4.0, abs=1e-8)
        assert res.error_fine < res.error_coarse
        assert np.allclose(res.extrapolated, u, atol=1e-10)

    def test_scaled_overlap_is_unity(self):
        from repro.analysis import scaled_difference_overlap

        c, m, f, _ = self._solutions(p=6.0)
        assert scaled_difference_overlap(c, m, f, 6.0) == pytest.approx(
            1.0, abs=1e-8
        )

    def test_degenerate_inputs_rejected(self):
        from repro.analysis import observed_order, scaled_difference_overlap

        u = np.ones(5)
        with pytest.raises(ValueError):
            observed_order(u + 1, u, u)
        with pytest.raises(ValueError):
            scaled_difference_overlap(u, u, u + 1, 4.0)
