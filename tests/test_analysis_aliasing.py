"""Buffer-aliasing audit: clean pooled solvers, injected hazards caught."""

import numpy as np
import pytest

from repro.analysis.aliasing import (
    AliasAuditor,
    AuditedPool,
    audit_solver_step,
)
from repro.bssn import Puncture
from repro.mesh import Mesh
from repro.octree import LinearOctree
from repro.solver import BSSNSolver, WaveSolver


@pytest.fixture(scope="module")
def wave_solver():
    s = WaveSolver(Mesh(LinearOctree.uniform(2)), pooled=True)
    c = s.coords()
    s.state[0] = np.exp(-(c**2).sum(axis=-1))
    s.state[1] = 0.0
    s.step()  # warm the arena
    return s


@pytest.fixture(scope="module")
def bssn_solver():
    s = BSSNSolver(Mesh(LinearOctree.uniform(2)), pooled=True)
    s.set_punctures([Puncture(mass=1.0, position=np.array([0.1, 0.0, 0.0]))])
    s.step()
    return s


# -- real solvers audit clean -------------------------------------------------


def test_wave_step_audits_clean(wave_solver):
    report = audit_solver_step(wave_solver)
    assert report.ok, [f.to_dict() for f in report.findings]
    assert report.num_rhs_calls == 4  # one per RK4 stage
    assert report.events  # the pooled path must actually lease buffers
    assert {"unzip", "deriv", "boundary"} <= set(report.phases_seen())


def test_bssn_step_audits_clean(bssn_solver):
    report = audit_solver_step(bssn_solver)
    assert report.ok, [f.to_dict() for f in report.findings]
    assert report.num_rhs_calls == 4
    assert {"unzip", "deriv", "algebra"} <= set(report.phases_seen())


def test_audit_restores_solver(wave_solver):
    state, t, count = wave_solver.state, wave_solver.t, wave_solver.step_count
    audit_solver_step(wave_solver)
    assert wave_solver.state is state
    assert wave_solver.t == t
    assert wave_solver.step_count == count
    # the audited pool must not remain installed
    assert type(wave_solver.workspace().pool).__name__ == "BufferPool"


def test_audit_does_not_change_results(wave_solver):
    """Stepping after an audit gives the same state as stepping without."""
    twin = WaveSolver(Mesh(LinearOctree.uniform(2)), pooled=True)
    c = twin.coords()
    twin.state[0] = np.exp(-(c**2).sum(axis=-1))
    twin.state[1] = 0.0
    twin.step()
    audit_solver_step(twin)
    twin.step()
    ref = WaveSolver(Mesh(LinearOctree.uniform(2)), pooled=True)
    ref.state[0] = np.exp(-(ref.coords() ** 2).sum(axis=-1))
    ref.state[1] = 0.0
    ref.step()
    ref.step()
    assert twin.state.tobytes() == ref.state.tobytes()


def test_requires_pooled_solver():
    s = WaveSolver(Mesh(LinearOctree.uniform(2)), pooled=False)
    with pytest.raises(ValueError, match="pooled"):
        audit_solver_step(s)


# -- injected hazards ---------------------------------------------------------


def test_double_lease_across_phases_flagged():
    auditor = AliasAuditor()
    pool = AuditedPool(auditor)
    auditor.push_phase("deriv")
    pool.get("scratch", (4, 4))
    pool.get("scratch", (4, 4))  # same phase: legitimate serial reuse
    auditor.pop_phase()
    assert not auditor.findings
    auditor.push_phase("algebra")
    pool.get("scratch", (4, 4))  # second phase: write-after-read hazard
    auditor.pop_phase()
    kinds = {f.kind for f in auditor.findings}
    assert kinds == {"double-lease"}


def test_overlapping_pool_buffers_flagged():
    auditor = AliasAuditor()
    pool = AuditedPool(auditor)
    # pre-seed the arena with two views of one backing array, as an
    # aliasing bug in the pool would produce
    backing = np.zeros(32)
    pool._bufs[("a", (16,), np.dtype(np.float64))] = backing[:16]
    pool._bufs[("b", (16,), np.dtype(np.float64))] = backing[8:24]
    pool.get("a", (16,))
    pool.get("b", (16,))
    kinds = {f.kind for f in auditor.findings}
    assert "buffer-overlap" in kinds


def test_pool_buffer_overlapping_workspace_flagged():
    auditor = AliasAuditor()
    backing = np.zeros(32)
    auditor.register_external("rk4.k", backing[:16])
    pool = AuditedPool(auditor)
    pool._bufs[("a", (16,), np.dtype(np.float64))] = backing[8:24]
    pool.get("a", (16,))
    assert any(f.kind == "buffer-overlap" for f in auditor.findings)


def test_rhs_in_out_aliasing_flagged():
    auditor = AliasAuditor()
    u = np.zeros((2, 8))
    auditor.record_rhs_call(u, u[0:1])
    assert any(f.kind == "write-after-read" for f in auditor.findings)
    # disjoint arrays are fine
    auditor2 = AliasAuditor()
    auditor2.record_rhs_call(u, np.zeros((2, 8)))
    assert not auditor2.findings


def test_pingpong_alias_flagged():
    auditor = AliasAuditor()
    u = np.zeros(8)
    auditor.record_step_result(u, u)
    assert any(f.kind == "pingpong-alias" for f in auditor.findings)
    auditor2 = AliasAuditor()
    auditor2.record_step_result(u, np.zeros(8))
    assert not auditor2.findings


def test_identical_external_ranges_not_flagged():
    """The state *is* one ping-pong slot after a step — same byte range
    registered under two names must not fire."""
    auditor = AliasAuditor()
    arr = np.zeros(16)
    auditor.register_external("rk4.out_a", arr)
    auditor.register_external("state", arr)
    assert not auditor.findings
