"""Hot-path allocation lint: registry coverage, defects caught, pragmas."""

import numpy as np
import pytest

from repro.analysis.alloclint import lint_function, lint_hot_paths
from repro.perf import registered_hot_paths


# -- the real hot path is clean ----------------------------------------------


def test_registry_covers_step_pipeline():
    reg = registered_hot_paths()
    assert len(reg) >= 15
    mods = {key.split(":")[0] for key in reg}
    assert {
        "repro.fd.derivatives",
        "repro.mesh.octant_to_patch",
        "repro.bssn.rhs",
        "repro.solver.rk4",
        "repro.solver.wave_solver",
        "repro.solver.bssn_solver",
    } <= mods


def test_hot_paths_lint_clean():
    findings, stats = lint_hot_paths()
    assert not findings, [f.to_dict() for f in findings]
    assert stats["functions_checked"] >= 15
    assert stats["pragma_exemptions"] > 0  # baselines are marked, not hidden


# -- injected defects ---------------------------------------------------------


def _alloc_call(u: np.ndarray) -> np.ndarray:
    tmp = np.zeros(u.shape)
    tmp += u
    return tmp


def _operator_temp(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    w = u + v
    return w


def _copy_method(u: np.ndarray) -> np.ndarray:
    return u.copy()


def _np_where(u: np.ndarray) -> np.ndarray:
    return np.where(u > 0, u, 0.0)


def _clean(u: np.ndarray, out: np.ndarray) -> np.ndarray:
    np.multiply(u, 2.0, out=out)
    np.add(out, u, out=out)
    return out


def _pragma_exempt(u: np.ndarray) -> np.ndarray:
    return np.empty_like(u)  # alloc-ok: intentional


def test_alloc_call_caught():
    findings = lint_function(_alloc_call)
    assert any(f.kind == "hot-alloc-call" for f in findings)
    f = next(f for f in findings if f.kind == "hot-alloc-call")
    assert "zeros" in f.message
    assert __file__.split("/")[-1] in f.location or ":" in f.location


def test_operator_temp_caught():
    findings = lint_function(_operator_temp)
    assert any(f.kind == "hot-operator-temp" for f in findings)


def test_copy_method_caught():
    findings = lint_function(_copy_method)
    assert any("copy" in f.message for f in findings)


def test_np_where_caught():
    findings = lint_function(_np_where)
    assert any(f.kind == "hot-alloc-call" for f in findings)


def test_out_form_passes():
    assert lint_function(_clean) == []


def test_pragma_suppresses():
    assert lint_function(_pragma_exempt) == []


def test_finding_location_has_line_number():
    findings = lint_function(_alloc_call, label="mylabel")
    f = findings[0]
    assert f.location.startswith("mylabel:")
    assert int(f.location.split(":")[-1]) > 0


def test_unannotated_params_not_assumed_arrays():
    def fn(u, v):
        return u + v  # scalars as far as the lint knows

    assert lint_function(fn) == []


def test_shape_access_breaks_array_chain():
    def fn(u: np.ndarray):
        n = u.shape[0] + 1  # scalar arithmetic on .shape is fine
        return n

    assert lint_function(fn) == []


def test_augmented_assign_in_place_allowed():
    def fn(u: np.ndarray, v: np.ndarray):
        u += 1.0
        u *= 2.0
        return u

    assert lint_function(fn) == []
