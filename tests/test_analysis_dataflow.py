"""Dataflow verifier: clean pass on real schedules, injected defects caught."""

import pytest

from repro.analysis.dataflow import (
    live_intervals,
    peak_live,
    verify_schedule,
    verify_spec,
)
from repro.codegen import VARIANTS, get_kernel_spec
from repro.codegen.regalloc import Statement, max_live_values


@pytest.fixture(scope="module", params=VARIANTS)
def spec(request):
    return get_kernel_spec(request.param)


# -- the real schedules are clean -------------------------------------------


def test_generated_schedules_verify_clean(spec):
    report = verify_spec(spec)
    assert report.ok, [f.to_dict() for f in report.findings]
    assert report.num_statements == len(spec.statements)


def test_live_peak_matches_regalloc(spec):
    """The independent difference-array sweep must agree with the
    allocator's event-sort accounting."""
    report = verify_spec(spec)
    assert report.max_live_ondemand == max_live_values(
        spec.statements, spec.input_names
    )
    assert report.max_live >= report.max_live_ondemand


def test_verify_time_recorded(spec):
    report = verify_spec(spec)
    assert report.verify_time > 0.0


# -- synthetic schedules with injected defects ------------------------------

INPUTS = {"a", "b", "grad_0_alpha"}


def _stmt(target, src, inputs, *, is_output=False, output_var=None):
    return Statement(
        target=target, src=src, inputs=tuple(inputs), flops=1,
        is_output=is_output, output_var=output_var,
    )


def _outputs(start=0, n=2, dep="t0"):
    return [
        _stmt(f"o{v}", f"{dep} + {dep}", [dep], is_output=True, output_var=v)
        for v in range(start, n)
    ]


def _verify(statements, **kw):
    kw.setdefault("num_outputs", 2)
    kw.setdefault("cross_check", False)
    return verify_schedule(statements, INPUTS, **kw)


def kinds(report):
    return {f.kind for f in report.findings}


def test_clean_synthetic_schedule_passes():
    sched = [_stmt("t0", "a * b", ["a", "b"])] + _outputs()
    report = _verify(sched, cross_check=True)
    assert report.ok


def test_use_before_def_caught():
    sched = [_stmt("t0", "a * undefined_temp", ["a", "undefined_temp"])]
    sched += _outputs()
    report = _verify(sched)
    assert "use-before-def" in kinds(report)
    f = next(f for f in report.findings if f.kind == "use-before-def")
    assert f.statement == 0
    assert "stmt[0]" in f.location


def test_dead_store_caught():
    sched = [
        _stmt("t0", "a * b", ["a", "b"]),
        _stmt("t1", "t0 + a", ["t0", "a"]),
        _stmt("t1", "t0 + b", ["t0", "b"]),  # overwrites t1 unread
        _stmt("o0", "t1 + t1", ["t1"], is_output=True, output_var=0),
        _stmt("o1", "t1 + t1", ["t1"], is_output=True, output_var=1),
    ]
    # double-write of t1 also fires; the dead-store warning must pinpoint
    # the first write
    report = _verify(sched)
    assert "dead-store" in kinds(report)
    f = next(f for f in report.findings if f.kind == "dead-store")
    assert f.statement == 1
    assert f.severity == "warning"


def test_double_write_caught():
    sched = [
        _stmt("t0", "a * b", ["a", "b"]),
        _stmt("t0", "a + b", ["a", "b"]),
    ] + _outputs()
    report = _verify(sched)
    assert "double-write" in kinds(report)


def test_missing_output_caught():
    sched = [_stmt("t0", "a * b", ["a", "b"])] + _outputs(n=1)
    report = _verify(sched)
    assert "missing-output" in kinds(report)
    f = next(f for f in report.findings if f.kind == "missing-output")
    assert "[1]" in f.message


def test_duplicate_output_caught():
    sched = [_stmt("t0", "a * b", ["a", "b"])] + _outputs() + [
        _stmt("o0b", "t0 + t0", ["t0"], is_output=True, output_var=0)
    ]
    report = _verify(sched)
    assert "duplicate-output" in kinds(report)


def test_unknown_symbol_in_src_caught():
    sched = [_stmt("t0", "a * mystery", ["a"])] + _outputs()
    report = _verify(sched)
    assert "unknown-symbol" in kinds(report)


def test_operand_mismatch_both_directions():
    sched = [
        _stmt("t0", "a * b", ["a"]),          # src uses b, not declared
        _stmt("t1", "t0 + t0", ["t0", "b"]),  # declares b, src ignores it
    ] + _outputs(dep="t1")
    report = _verify(sched)
    mismatches = [f for f in report.findings if f.kind == "operand-mismatch"]
    assert len(mismatches) == 2


def test_input_overwrite_caught():
    sched = [_stmt("a", "b + b", ["b"])] + _outputs(dep="a")
    report = _verify(sched)
    assert "input-overwrite" in kinds(report)


def test_unused_temp_warned():
    sched = [_stmt("t9", "a * b", ["a", "b"]),
             _stmt("t0", "a + b", ["a", "b"])] + _outputs()
    report = _verify(sched)
    assert "unused-temp" in kinds(report)
    assert all(
        f.severity == "warning"
        for f in report.findings if f.kind == "unused-temp"
    )


def test_numeric_literals_not_symbols():
    """'1e-05' must not surface a phantom identifier 'e'."""
    sched = [_stmt("t0", "a * 1e-05 + 2.5", ["a"])] + _outputs()
    report = _verify(sched)
    assert "unknown-symbol" not in kinds(report)


# -- live-interval derivation ------------------------------------------------


def test_live_intervals_and_peak():
    sched = [
        _stmt("t0", "a * b", ["a", "b"]),
        _stmt("t1", "t0 + a", ["t0", "a"]),
        _stmt("o0", "t1 + t1", ["t1"], is_output=True, output_var=0),
        _stmt("o1", "b + b", ["b"], is_output=True, output_var=1),
    ]
    iv = live_intervals(sched, INPUTS, input_defs="on-demand")
    assert iv["t0"] == (0, 1)
    assert iv["t1"] == (1, 2)
    assert iv["a"] == (0, 1)
    assert iv["b"] == (0, 3)
    # a, b, t0 all live at stmt 1 boundary plus t1
    assert peak_live(iv, len(sched)) == max_live_values(sched, INPUTS)


def test_upfront_register_inputs_live_from_zero():
    sched = [
        _stmt("t0", "a + a", ["a"]),
        _stmt("t1", "grad_0_alpha * t0", ["grad_0_alpha", "t0"]),
        _stmt("o0", "t1 + t1", ["t1"], is_output=True, output_var=0),
        _stmt("o1", "t1 + t1", ["t1"], is_output=True, output_var=1),
    ]
    on_demand = live_intervals(sched, INPUTS, input_defs="on-demand")
    upfront = live_intervals(sched, INPUTS, input_defs="upfront")
    assert on_demand["grad_0_alpha"] == (1, 1)
    assert upfront["grad_0_alpha"] == (0, 1)
    # plain inputs start at first use either way
    assert upfront["a"] == (0, 0)
