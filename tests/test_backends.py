"""Compiled-kernel backend: selection ladder, bitwise contract, telemetry.

The headline guarantees under test (DESIGN.md §11):

* ``backend="compiled"`` produces **bitwise-identical** results to the
  pooled NumPy execution of the same generated schedule — single RHS
  evaluations, derivative exports, and multi-step RK4 evolutions;
* the C (cffi) and Python/Numba lowerings of one schedule agree
  bitwise with each other;
* backend resolution degrades gracefully: ``auto`` falls back to numpy
  with exactly one warning, explicit ``compiled`` raises a clear error
  on unsupported hosts;
* ``RunConfig.backend`` round-trips and keys the result cache — a
  compiled run never shares a ResultCache entry with a numpy run, so
  cached artefacts stay attributable to the code path that made them.
"""

import warnings

import numpy as np
import pytest

from repro.bssn import (
    BSSNParams,
    Puncture,
    compute_derivatives,
    evaluate_algebraic,
    mesh_puncture_state,
)
from repro.bssn import state as S
from repro.bssn.testdata import gauge_wave_state, linear_wave_state
from repro.codegen import backends as B
from repro.codegen.backends import (
    BackendUnavailableError,
    NativeWaveRHS,
    resolve_backend,
)
from repro.codegen.generators import (
    COMPILED_VARIANT,
    get_algebra_kernel,
    get_kernel_spec,
)
from repro.io.params import RunConfig
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.perf import StepProfiler
from repro.solver.bssn_solver import BSSNSolver
from repro.solver.wave_solver import PHI, GaussianSource, WaveSolver
from repro.telemetry import MetricsRegistry

needs_native = pytest.mark.skipif(
    B.native_impl() is None,
    reason="neither numba nor a cffi+cc toolchain is available",
)
needs_cffi = pytest.mark.skipif(
    B.probe_cffi() is None, reason="cffi or a C compiler is missing"
)


@pytest.fixture(scope="module")
def mesh():
    return Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))


@pytest.fixture(scope="module")
def small_mesh():
    return Mesh(LinearOctree.uniform(1, domain=Domain(-8.0, 8.0)))


@pytest.fixture(scope="module")
def bbh_state(mesh):
    u = mesh_puncture_state(
        mesh, [Puncture(mass=1.0, position=[0.1, 0.2, 0.3])]
    )
    rng = np.random.default_rng(7)
    return u + 1e-6 * rng.standard_normal(u.shape)


def _solver_pair(mesh, **kw):
    """(compiled solver, numpy solver running the identical schedule)."""
    sc = BSSNSolver(mesh, BSSNParams(), backend="compiled", **kw)
    sn = BSSNSolver(
        mesh, BSSNParams(), backend="numpy",
        algebra=get_algebra_kernel(COMPILED_VARIANT), **kw
    )
    return sc, sn


# ---------------------------------------------------------------------------
# backend resolution
# ---------------------------------------------------------------------------


class TestSelection:
    def test_numpy_passthrough(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    def test_auto_falls_back_with_single_warning(self, monkeypatch):
        """Numba and cffi both absent: auto degrades to numpy, warning
        exactly once per process."""
        monkeypatch.setattr(B, "probe_numba", lambda: None)
        monkeypatch.setattr(B, "probe_cffi", lambda: None)
        monkeypatch.setattr(B, "_WARNED_FALLBACK", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("auto") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert resolve_backend("auto") == "numpy"

    def test_explicit_compiled_raises_clear_error(self, monkeypatch):
        monkeypatch.setattr(B, "probe_numba", lambda: None)
        monkeypatch.setattr(B, "probe_cffi", lambda: None)
        with pytest.raises(BackendUnavailableError, match="numba"):
            resolve_backend("compiled")

    def test_solver_ctor_surfaces_unavailability(self, mesh, monkeypatch):
        monkeypatch.setattr(B, "probe_numba", lambda: None)
        monkeypatch.setattr(B, "probe_cffi", lambda: None)
        with pytest.raises(BackendUnavailableError):
            BSSNSolver(mesh, backend="compiled")

    @needs_native
    def test_compiled_requires_pooled(self, mesh):
        with pytest.raises(ValueError, match="pooled"):
            BSSNSolver(mesh, backend="compiled", pooled=False)

    @needs_native
    def test_compiled_rejects_algebra_override(self, mesh):
        with pytest.raises(ValueError, match="algebra"):
            BSSNSolver(
                mesh, backend="compiled",
                algebra=get_algebra_kernel(COMPILED_VARIANT),
            )

    def test_backend_info_keys(self):
        info = B.backend_info()
        assert set(info) == {"numba", "cffi", "cc", "native_impl"}


# ---------------------------------------------------------------------------
# RunConfig integration
# ---------------------------------------------------------------------------


class TestRunConfig:
    def test_backend_round_trips(self):
        cfg = RunConfig(backend="compiled")
        back = RunConfig.from_json(cfg.to_json())
        assert back.backend == "compiled"
        back.validate()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunConfig(backend="cuda").validate()

    def test_cache_key_separates_backends(self):
        """Compiled and numpy runs must NOT share ResultCache entries:
        the two paths are bitwise-identical by construction, but a
        cached artefact must stay attributable to the code path that
        produced it (a backend bug would otherwise poison numpy runs'
        cache hits).  The backend field is therefore part of the
        physics hash."""
        a = RunConfig(backend="numpy")
        b = RunConfig(backend="compiled")
        assert a.cache_key() != b.cache_key()
        # name stays excluded from the key
        assert RunConfig(name="x").cache_key() == RunConfig(name="y").cache_key()


# ---------------------------------------------------------------------------
# bitwise contract: BSSN
# ---------------------------------------------------------------------------


@needs_native
class TestBSSNBitwise:
    def test_rhs_bitwise_vs_numpy_schedule(self, mesh, bbh_state):
        sc, sn = _solver_pair(mesh, chunk_octants=24)
        rc = sc.full_rhs(bbh_state, 0.0)
        rn = sn.full_rhs(bbh_state, 0.0)
        assert np.array_equal(rc, rn)

    def test_rhs_close_to_reference_kernel(self, mesh, bbh_state):
        """Against the hand-vectorised reference the difference is pure
        schedule-reassociation roundoff (same tolerance the existing
        codegen variants meet)."""
        sc = BSSNSolver(mesh, BSSNParams(), backend="compiled")
        sr = BSSNSolver(mesh, BSSNParams(), backend="numpy")
        rc = sc.full_rhs(bbh_state, 0.0)
        rr = sr.full_rhs(bbh_state, 0.0)
        scale = np.abs(rr).max()
        assert np.abs(rc - rr).max() <= 1e-13 * scale

    @pytest.mark.parametrize("make_state", [
        gauge_wave_state, linear_wave_state,
    ], ids=["gauge_wave", "linear_wave"])
    def test_testdata_vectors_bitwise(self, mesh, make_state):
        u = make_state(mesh.coordinates())
        sc, sn = _solver_pair(mesh)
        assert np.array_equal(sc.full_rhs(u, 0.0), sn.full_rhs(u, 0.0))

    def test_centred_advection_bitwise(self, mesh, bbh_state):
        """use_upwind=False exercises the adv-aliases-d1 kernel branch."""
        p = BSSNParams(use_upwind=False)
        sc = BSSNSolver(mesh, p, backend="compiled")
        sn = BSSNSolver(mesh, p, backend="numpy",
                        algebra=get_algebra_kernel(COMPILED_VARIANT))
        assert np.array_equal(
            sc.full_rhs(bbh_state, 0.0), sn.full_rhs(bbh_state, 0.0)
        )

    def test_20_step_evolution_bitwise(self, small_mesh):
        """20 RK4 steps (80 RHS evaluations + constraint enforcement +
        Sommerfeld boundaries) stay bitwise-identical — the acceptance
        bar of ISSUE 6, achieved exactly (tolerance 0)."""
        u = mesh_puncture_state(
            small_mesh, [Puncture(mass=1.0, position=[0.3, 0.1, -0.2])]
        )
        sc, sn = _solver_pair(small_mesh)
        sc.state = u.copy()
        sn.state = u.copy()
        for _ in range(20):
            sc.step()
            sn.step()
        assert np.isfinite(sc.state).all()
        assert np.array_equal(sc.state, sn.state)

    def test_d1_export_feeds_sommerfeld(self, mesh, bbh_state):
        """Boundary octants' exported first derivatives equal the NumPy
        derivative stage's d1 (the Sommerfeld path consumes them)."""
        from repro.codegen.backends import NativeBSSNRHS
        from repro.perf import SolverWorkspace

        params = BSSNParams()
        native = NativeBSSNRHS()
        ws = SolverWorkspace(mesh, mesh.num_octants)
        patches = ws.pool.get(
            "solver.patches",
            (S.NUM_VARS, mesh.num_octants, mesh.P, mesh.P, mesh.P),
        )
        mesh.unzip(bbh_state, out=patches, coalesce=True, pool=ws.pool)
        (lo, hi, faces), = ws.chunk_faces()
        _, d1v = native(patches, lo, hi, mesh, params, faces, ws.pool)
        derivs = compute_derivatives(patches, mesh.dx, params)
        boundary = sorted({o for _, _, octs in faces for o in octs})
        for var in (S.ALPHA, S.CHI, S.K):
            for d in range(3):
                assert np.array_equal(
                    d1v[var, d][boundary], derivs.d1[var, d][boundary]
                )


# ---------------------------------------------------------------------------
# bitwise contract: wave
# ---------------------------------------------------------------------------


@needs_native
class TestWaveBitwise:
    @pytest.mark.parametrize("with_source", [False, True],
                             ids=["free", "sourced"])
    def test_rhs_and_steps_bitwise(self, mesh, with_source):
        src = GaussianSource(amplitude=lambda t: np.sin(3 * t)) \
            if with_source else None
        sc = WaveSolver(mesh, backend="compiled", source=src)
        sn = WaveSolver(mesh, backend="numpy", source=src)
        rng = np.random.default_rng(1)
        u = 1e-3 * rng.standard_normal(sn.state.shape)
        assert np.array_equal(sc.full_rhs(u, 0.3), sn.full_rhs(u, 0.3))
        sc.state[:] = u
        sn.state[:] = u
        for _ in range(5):
            sc.step()
            sn.step()
        assert np.array_equal(sc.state, sn.state)


# ---------------------------------------------------------------------------
# kernel-level consistency (no solver)
# ---------------------------------------------------------------------------


class TestKernelConsistency:
    def test_py_dispatcher_matches_numpy_wave(self, small_mesh):
        """The un-jitted Python lowering drives the dispatcher on hosts
        with no toolchain at all — same bitwise contract, tiny grid."""
        from repro.perf import BufferPool

        native = NativeWaveRHS(impl="py")
        sn = WaveSolver(small_mesh, backend="numpy")
        rng = np.random.default_rng(2)
        u = rng.standard_normal(sn.state.shape)
        ref = sn.full_rhs(u, 0.0)

        pool = BufferPool()
        n = small_mesh.num_octants
        patches = small_mesh.unzip(u)
        rhs = np.zeros_like(u)
        native(patches, 0, n, small_mesh, 1.0, sn.ko_sigma, True, rhs, pool)
        # interior arithmetic is identical; the solver additionally
        # overwrites boundary octants via its Sommerfeld pass
        interior = np.ones(n, dtype=bool)
        interior[small_mesh.boundary_octants()] = False
        if interior.any():
            assert np.array_equal(rhs[:, interior], ref[:, interior])
        sn._apply_sommerfeld(rhs, u, patches, sn.coords())
        assert np.array_equal(rhs, ref)

    @needs_cffi
    def test_c_and_py_lowerings_agree_bitwise(self, small_mesh, bbh_state):
        """The cffi-compiled C kernel and the interpreted Python kernel
        execute identical operation sequences."""
        from repro.codegen.cbackend import (
            NUM_PARAMS,
            build_native_lib,
            compile_py_kernels,
            emit_c_source,
            pack_params,
            scratch_doubles,
            stencil_weights,
        )
        from repro.fd.derivatives import _h_factor

        mesh = small_mesh
        u = mesh_puncture_state(
            mesh, [Puncture(mass=1.0, position=[0.2, -0.1, 0.3])]
        )
        spec = get_kernel_spec(COMPILED_VARIANT)
        patches = mesh.unzip(u)
        n, P, r, k = mesh.num_octants, mesh.P, mesh.r, mesh.k
        nc = 2
        w = stencil_weights()
        pbuf = pack_params(BSSNParams(), np.empty(NUM_PARAMS))
        h = np.asarray(mesh.dx[:nc], dtype=np.float64)
        hf1 = _h_factor(h, 1).ravel()
        hf2 = _h_factor(h, 2).ravel()
        bdry = np.ones(nc, dtype=np.int64)
        args = (n, 0, nc, P, r, k)

        rhs_py = np.zeros((S.NUM_VARS, nc, r, r, r))
        d1_py = np.zeros((3, S.NUM_VARS, nc, r, r, r))
        scratch = np.zeros(scratch_doubles(P, r))
        ns = compile_py_kernels(spec)
        ns["bssn_rhs_chunk"](
            patches.reshape(-1), *args, hf1, hf2, hf1,
            w["w1"], w["w2"], w["wko"], w["wup"], w["wun"],
            pbuf, bdry, rhs_py.reshape(-1), d1_py.reshape(-1), scratch,
        )

        lib = build_native_lib(emit_c_source(spec))
        rhs_c = np.zeros_like(rhs_py)
        d1_c = np.zeros_like(d1_py)
        scratch[:] = 0
        lib.lib.bssn_rhs_chunk(
            lib.ptr(patches), *args, lib.ptr(hf1), lib.ptr(hf2),
            lib.ptr(hf1), lib.ptr(w["w1"]), lib.ptr(w["w2"]),
            lib.ptr(w["wko"]), lib.ptr(w["wup"]), lib.ptr(w["wun"]),
            lib.ptr(pbuf), lib.ptr(bdry), lib.ptr(rhs_c), lib.ptr(d1_c),
            lib.ptr(scratch),
        )
        assert np.array_equal(rhs_c, rhs_py)
        assert np.array_equal(d1_c, d1_py)

    def test_schedule_is_bitwise_lowerable(self):
        from repro.codegen.lowering import is_bitwise_lowerable

        ok, offenders = is_bitwise_lowerable(get_kernel_spec(COMPILED_VARIANT))
        assert ok, f"non-exact pow fallbacks in schedule: {offenders[:3]}"


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------


@needs_native
class TestTelemetry:
    def test_kernel_counters_published(self, mesh, bbh_state):
        metrics = MetricsRegistry()
        prof = StepProfiler(metrics=metrics)
        s = BSSNSolver(mesh, backend="compiled", profiler=prof)
        prof.begin_step()
        s.full_rhs(bbh_state, 0.0)
        prof.end_step()
        label = f"bssn_rhs_chunk[{B.native_impl()}]"
        assert metrics.get("gpu_launches", kernel=label).value >= 1
        assert metrics.get("gpu_seconds", kernel=label).value > 0
        assert metrics.get("gpu_flops", kernel=label).value > 0
        compile_c = metrics.get("kernel_compile_seconds", kernel=label)
        assert compile_c is not None  # recorded even when 0.0 (cache hit)
