"""Direct tests for the shared tensor-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bssn.geometry import (
    christoffel_conformal,
    christoffel_full,
    det_sym,
    inverse_sym,
    raise_one,
    raise_two,
    sym3x3,
    trace_free,
)


def _random_spd(rng, n=5):
    """Random symmetric positive-definite 3x3 fields as [i][j] arrays."""
    A = rng.normal(size=(n, 3, 3))
    M = np.einsum("nij,nkj->nik", A, A) + 3.0 * np.eye(3)
    return [[M[:, i, j] for j in range(3)] for i in range(3)]


class TestLinearAlgebra:
    def test_det_identity(self):
        eye = [[np.full(4, 1.0 if i == j else 0.0) for j in range(3)] for i in range(3)]
        assert np.allclose(det_sym(eye), 1.0)

    def test_inverse_matches_numpy(self):
        rng = np.random.default_rng(0)
        g = _random_spd(rng)
        gu = inverse_sym(g)
        G = np.stack([np.stack([g[i][j] for j in range(3)]) for i in range(3)])
        GU = np.stack([np.stack([gu[i][j] for j in range(3)]) for i in range(3)])
        for n in range(G.shape[2]):
            assert np.allclose(GU[:, :, n], np.linalg.inv(G[:, :, n]), atol=1e-10)

    def test_inverse_symmetric(self):
        rng = np.random.default_rng(1)
        gu = inverse_sym(_random_spd(rng))
        for i in range(3):
            for j in range(3):
                assert gu[i][j] is gu[j][i] or np.allclose(gu[i][j], gu[j][i])

    def test_trace_free_kills_trace(self):
        rng = np.random.default_rng(2)
        g = _random_spd(rng)
        gu = inverse_sym(g)
        X = _random_spd(rng)
        Xtf = trace_free(X, g, gu)
        tr = sum(gu[i][j] * Xtf[i][j] for i in range(3) for j in range(3))
        assert np.abs(tr).max() < 1e-10

    def test_raise_consistency(self):
        """At^{ij} == gt^{jk} (At^i_k)."""
        rng = np.random.default_rng(3)
        g = _random_spd(rng)
        gu = inverse_sym(g)
        At = _random_spd(rng)
        mixed = raise_one(At, gu)
        up = raise_two(At, gu)
        for i in range(3):
            for j in range(3):
                expect = sum(gu[j][k] * mixed[i][k] for k in range(3))
                assert np.allclose(up[i][j], expect, atol=1e-10)


class TestChristoffels:
    def test_flat_metric_zero(self):
        n = 4
        gt = [[np.full(n, 1.0 if i == j else 0.0) for j in range(3)] for i in range(3)]
        gtu = inverse_sym(gt)
        zero = np.zeros(n)
        dgt = [[[zero for _ in range(3)] for _ in range(3)] for _ in range(3)]
        C2, C1 = christoffel_conformal(gt, gtu, dgt)
        for k in range(3):
            for i in range(3):
                for j in range(3):
                    assert np.all(C2[k][i][j] == 0.0)
                    assert np.all(C1[k][i][j] == 0.0)

    def test_conformal_correction_conformally_flat(self):
        """For γ̃ = δ the full Christoffel reduces to the pure χ terms
        (Eq. 13), verified against the closed form."""
        n = 6
        rng = np.random.default_rng(4)
        gt = [[np.full(n, 1.0 if i == j else 0.0) for j in range(3)] for i in range(3)]
        gtu = inverse_sym(gt)
        zero = np.zeros(n)
        dgt = [[[zero] * 3 for _ in range(3)] for _ in range(3)]
        C2, _ = christoffel_conformal(gt, gtu, dgt)
        chi = rng.uniform(0.5, 1.5, n)
        dchi = [rng.normal(size=n) for _ in range(3)]
        C2f = christoffel_full(C2, gt, gtu, chi, dchi)
        for k in range(3):
            for i in range(3):
                for j in range(3):
                    expect = -(
                        (k == i) * dchi[j]
                        + (k == j) * dchi[i]
                        - (i == j) * dchi[k]
                    ) / (2.0 * chi)
                    assert np.allclose(C2f[k][i][j], expect, atol=1e-12)

    def test_symmetry_in_lower_indices(self):
        rng = np.random.default_rng(5)
        gt = _random_spd(rng)
        gtu = inverse_sym(gt)
        n = len(gt[0][0])
        dgt = [
            [[rng.normal(size=n) for _ in range(3)] for _ in range(3)]
            for _ in range(3)
        ]
        # symmetrise dgt in its tensor indices
        for d in range(3):
            for i in range(3):
                for j in range(i + 1, 3):
                    dgt[d][j][i] = dgt[d][i][j]
        C2, C1 = christoffel_conformal(gt, gtu, dgt)
        for k in range(3):
            for i in range(3):
                for j in range(3):
                    assert np.allclose(C2[k][i][j], C2[k][j][i])


@given(seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_inverse_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    g = _random_spd(rng, n=3)
    gu = inverse_sym(g)
    # g · gu == identity
    for i in range(3):
        for j in range(3):
            s = sum(g[i][k] * gu[k][j] for k in range(3))
            expect = 1.0 if i == j else 0.0
            assert np.allclose(s, expect, atol=1e-9)
