"""Physics tests for the BSSN RHS, constraints, and Ψ₄."""

import numpy as np
import pytest

from repro.bssn import (
    BSSNParams,
    Puncture,
    bssn_rhs,
    compute_constraints,
    compute_derivatives,
    compute_psi4,
    constraint_norms,
    evaluate_algebraic,
    flat_metric_state,
    mesh_puncture_state,
)
from repro.bssn import state as S
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree


@pytest.fixture(scope="module")
def flat_mesh():
    return Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))


def _interior(patches, k=3, r=7):
    return np.ascontiguousarray(patches[:, :, k : k + r, k : k + r, k : k + r])


class TestFlatSpace:
    def test_rhs_zero(self, flat_mesh):
        u = flat_metric_state((flat_mesh.num_octants, 7, 7, 7))
        p = flat_mesh.unzip(u)
        rhs = bssn_rhs(p, flat_mesh.dx)
        assert np.abs(rhs).max() < 1e-13

    def test_constraints_zero(self, flat_mesh):
        u = flat_metric_state((flat_mesh.num_octants, 7, 7, 7))
        p = flat_mesh.unzip(u)
        derivs = compute_derivatives(p, flat_mesh.dx, BSSNParams())
        con = compute_constraints(_interior(p), derivs)
        n = constraint_norms(con)
        assert n["ham_linf"] < 1e-13
        assert n["mom_linf"] < 1e-13
        assert n["gam_linf"] < 1e-13

    def test_psi4_zero(self, flat_mesh):
        u = flat_metric_state((flat_mesh.num_octants, 7, 7, 7))
        p = flat_mesh.unzip(u)
        derivs = compute_derivatives(p, flat_mesh.dx, BSSNParams())
        re, im = compute_psi4(_interior(p), derivs, flat_mesh.coordinates())
        assert np.abs(re).max() < 1e-12
        assert np.abs(im).max() < 1e-12


class TestGaugeDynamics:
    def test_lapse_response_to_K(self, flat_mesh):
        """Eq. 1 with β = 0: ∂_t α = −2 α K exactly."""
        n = flat_mesh.num_octants
        u = flat_metric_state((n, 7, 7, 7))
        u[S.K] = 0.3
        p = flat_mesh.unzip(u)
        rhs = bssn_rhs(p, flat_mesh.dx, BSSNParams(ko_sigma=0.0))
        assert np.allclose(rhs[S.ALPHA], -2.0 * 1.0 * 0.3, atol=1e-12)

    def test_chi_response(self, flat_mesh):
        """Eq. 5 with β = 0: ∂_t χ = (2/3) χ α K."""
        n = flat_mesh.num_octants
        u = flat_metric_state((n, 7, 7, 7))
        u[S.K] = 0.3
        p = flat_mesh.unzip(u)
        rhs = bssn_rhs(p, flat_mesh.dx, BSSNParams(ko_sigma=0.0))
        assert np.allclose(rhs[S.CHI], (2.0 / 3.0) * 0.3, atol=1e-12)

    def test_shift_response_to_B(self, flat_mesh):
        """Eq. 2: ∂_t β^i = (3/4) B^i when β = 0."""
        n = flat_mesh.num_octants
        u = flat_metric_state((n, 7, 7, 7))
        u[S.B0] = 0.1
        p = flat_mesh.unzip(u)
        rhs = bssn_rhs(p, flat_mesh.dx, BSSNParams(ko_sigma=0.0))
        assert np.allclose(rhs[S.BETA0], 0.075, atol=1e-12)
        # and B feels the damping: ∂_t B = −η B
        assert np.allclose(rhs[S.B0], -2.0 * 0.1, atol=1e-12)

    def test_gt_response_to_At(self, flat_mesh):
        """Eq. 4 with β = 0: ∂_t γ̃_ij = −2 α Ã_ij."""
        n = flat_mesh.num_octants
        u = flat_metric_state((n, 7, 7, 7))
        u[S.AT12] = 0.02
        p = flat_mesh.unzip(u)
        rhs = bssn_rhs(p, flat_mesh.dx, BSSNParams(ko_sigma=0.0))
        assert np.allclose(rhs[S.GT12], -0.04, atol=1e-12)


class TestSchwarzschildPuncture:
    @pytest.fixture(scope="class")
    def meshes(self):
        out = []
        for level in (3, 4):
            t = LinearOctree.uniform(level, domain=Domain(-8.0, 8.0))
            out.append(Mesh(t))
        return out

    def test_hamiltonian_converges(self, meshes):
        """Brill–Lindquist data satisfies H = 0 analytically; the residual
        away from the puncture is truncation error and converges."""
        norms = []
        for mesh in meshes:
            u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
            p = mesh.unzip(u)
            derivs = compute_derivatives(p, mesh.dx, BSSNParams())
            con = compute_constraints(_interior(p), derivs)
            # exclude octants near the puncture (steep 1/r gradients) and
            # at the outer boundary (degree-4 extrapolated padding drops
            # the local order there)
            centers = mesh.tree.domain.to_physical(mesh.tree.octants.centers())
            sel = np.linalg.norm(centers, axis=1) > 3.0
            sel[mesh.boundary_octants()] = False
            assert sel.any()
            norms.append(np.abs(con["ham"][sel]).max())
        # 6th-order stencils, h halves: expect a factor ~2^6; accept >2^4
        assert norms[0] / norms[1] > 16.0

    def test_momentum_exactly_zero(self, meshes):
        """Time-symmetric data: M^i = 0 identically."""
        mesh = meshes[0]
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
        p = mesh.unzip(u)
        derivs = compute_derivatives(p, mesh.dx, BSSNParams())
        con = compute_constraints(_interior(p), derivs)
        assert np.abs(con["mom"]).max() < 1e-10

    def test_static_metric_fields(self, meshes):
        """For conformally flat data with β=0 the metric RHS reduces to
        −2αÃ = 0, and K's RHS is pure truncation error + gauge."""
        mesh = meshes[0]
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
        p = mesh.unzip(u)
        rhs = bssn_rhs(p, mesh.dx, BSSNParams(ko_sigma=0.0))
        assert np.abs(rhs[S.GT_SYM, ...]).max() < 1e-10
        assert np.abs(rhs[S.CHI]).max() < 1e-10


class TestRHSProperties:
    def test_chunked_equals_whole(self, flat_mesh):
        """Evaluating the RHS on octant chunks must equal one-shot."""
        mesh = flat_mesh
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.3, 0.2, 0.1])])
        p = mesh.unzip(u)
        whole = bssn_rhs(p, mesh.dx)
        halves = np.concatenate(
            [
                bssn_rhs(p[:, :32], mesh.dx[:32]),
                bssn_rhs(p[:, 32:], mesh.dx[32:]),
            ],
            axis=1,
        )
        assert np.allclose(whole, halves, atol=1e-14)

    def test_upwind_vs_centered_consistent(self, flat_mesh):
        """With zero shift the upwind and centred advective paths agree."""
        mesh = flat_mesh
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
        p = mesh.unzip(u)
        r1 = bssn_rhs(p, mesh.dx, BSSNParams(use_upwind=True))
        r2 = bssn_rhs(p, mesh.dx, BSSNParams(use_upwind=False))
        assert np.allclose(r1, r2, atol=1e-10)

    def test_var_count_validated(self, flat_mesh):
        with pytest.raises(ValueError):
            compute_derivatives(
                np.zeros((5, 2, 13, 13, 13)), 0.1, BSSNParams()
            )
