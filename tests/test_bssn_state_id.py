"""Tests for the BSSN state layout and puncture initial data."""

import numpy as np
import pytest

from repro.bssn import (
    Puncture,
    binary_punctures,
    bowen_york_Aij,
    conformal_factor,
    flat_metric_state,
    puncture_state,
)
from repro.bssn import state as S


class TestStateLayout:
    def test_24_variables(self):
        assert S.NUM_VARS == 24
        assert len(S.VAR_NAMES) == 24
        assert len(set(S.VAR_NAMES)) == 24

    def test_derivative_budget_matches_paper(self):
        """§IV-B: 72 first + 66 second + 72 KO = 210 derivatives."""
        assert S.NUM_FIRST_DERIVS == 72
        assert S.NUM_SECOND_DERIVS == 66
        assert S.NUM_KO_DERIVS == 72
        assert S.NUM_DERIVS == 210

    def test_sym_idx(self):
        assert S.SYM_IDX[0, 0] == 0
        assert S.SYM_IDX[1, 0] == S.SYM_IDX[0, 1]
        assert S.SYM_IDX[2, 2] == 5
        # all six slots reachable
        assert set(S.SYM_IDX.ravel().tolist()) == {0, 1, 2, 3, 4, 5}

    def test_flat_state(self):
        u = flat_metric_state((4,))
        assert np.all(u[S.ALPHA] == 1)
        assert np.all(u[S.CHI] == 1)
        assert np.all(u[S.GT11] == 1)
        assert np.all(u[S.GT12] == 0)
        assert np.all(u[S.K] == 0)


class TestPuncture:
    def test_validation(self):
        with pytest.raises(ValueError):
            Puncture(-1.0, [0, 0, 0])

    def test_binary_masses(self):
        p = binary_punctures(mass_ratio=4.0, separation=8.0)
        assert np.isclose(p[0].mass + p[1].mass, 1.0)
        assert np.isclose(p[0].mass / p[1].mass, 4.0)
        # COM at origin
        com = p[0].mass * p[0].position + p[1].mass * p[1].position
        assert np.allclose(com, 0.0)
        # opposite tangential momenta (quasi-circular)
        assert np.allclose(p[0].momentum + p[1].momentum, 0.0)
        assert p[0].momentum[1] != 0.0

    def test_conformal_factor_asymptotics(self):
        pts = [Puncture(1.0, [0, 0, 0])]
        far = np.array([[1e6, 0.0, 0.0]])
        psi = conformal_factor(pts, far)
        assert np.isclose(psi[0], 1.0, atol=1e-5)
        near = np.array([[1.0, 0.0, 0.0]])
        assert np.isclose(conformal_factor(pts, near)[0], 1.5)

    def test_adm_mass_from_monopole(self):
        """ψ ≈ 1 + M_ADM/(2r) at large r for Brill–Lindquist data."""
        pts = binary_punctures(mass_ratio=2.0, quasi_circular=False)
        r = 500.0
        psi = conformal_factor(pts, np.array([[r, 0.0, 0.0]]))[0]
        m_adm = 2.0 * r * (psi - 1.0)
        assert np.isclose(m_adm, 1.0, rtol=2e-2)


class TestBowenYork:
    def test_zero_momentum_zero_A(self):
        pts = [Puncture(1.0, [0, 0, 0])]
        c = np.random.default_rng(0).uniform(-5, 5, size=(10, 3))
        A = bowen_york_Aij(pts, c)
        assert np.allclose(A, 0.0)

    def test_trace_free(self):
        pts = [Puncture(1.0, [0, 0, 0], momentum=[0.1, 0.2, -0.05],
                        spin=[0.0, 0.0, 0.3])]
        c = np.random.default_rng(1).uniform(1, 5, size=(20, 3))
        A = bowen_york_Aij(pts, c)
        tr = A[..., 0, 0] + A[..., 1, 1] + A[..., 2, 2]
        assert np.abs(tr).max() < 1e-12

    def test_symmetric(self):
        pts = [Puncture(1.0, [1, 0, 0], momentum=[0, 0.2, 0])]
        c = np.random.default_rng(2).uniform(-4, 4, size=(20, 3))
        A = bowen_york_Aij(pts, c)
        assert np.allclose(A, np.swapaxes(A, -1, -2))

    def test_falloff(self):
        """Momentum part falls off as 1/r²."""
        pts = [Puncture(1.0, [0, 0, 0], momentum=[0, 0.5, 0])]
        a1 = np.abs(bowen_york_Aij(pts, np.array([[10.0, 3.0, 1.0]]))).max()
        a2 = np.abs(bowen_york_Aij(pts, np.array([[20.0, 6.0, 2.0]]))).max()
        assert np.isclose(a1 / a2, 4.0, rtol=0.05)


class TestPunctureState:
    def test_shapes_and_values(self):
        pts = binary_punctures(mass_ratio=2.0)
        c = np.random.default_rng(3).uniform(-10, 10, size=(4, 4, 3))
        u = puncture_state(pts, c)
        assert u.shape == (24, 4, 4)
        psi = conformal_factor(pts, c)
        assert np.allclose(u[S.CHI], psi**-4)
        assert np.allclose(u[S.ALPHA], psi**-2)
        assert np.allclose(u[S.GT11], 1.0)
        assert np.all(u[S.K] == 0.0)

    def test_at_nonzero_with_momentum(self):
        pts = binary_punctures(mass_ratio=1.0, quasi_circular=True)
        c = np.array([[2.0, 1.0, 0.5]])
        u = puncture_state(pts, c)
        assert np.abs(u[S.AT_SYM, ...]).max() > 0.0
