"""Tests for the analytic validation spacetimes."""

import numpy as np
import pytest

from repro.bssn import BSSNParams, compute_constraints, compute_derivatives
from repro.bssn import state as S
from repro.bssn.testdata import (
    gauge_wave_state,
    linear_wave_state,
    robust_stability_state,
)
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.solver import BSSNSolver


def _constraints_on(mesh, u):
    p = mesh.unzip(u)
    derivs = compute_derivatives(p, mesh.dx, BSSNParams())
    vals = np.ascontiguousarray(p[:, :, 3:10, 3:10, 3:10])
    return compute_constraints(vals, derivs)


@pytest.fixture(scope="module")
def mesh():
    # wavelength 8 on a [-8, 8] domain: periodic-compatible content
    return Mesh(LinearOctree.uniform(3, domain=Domain(-8.0, 8.0)))


class TestGaugeWave:
    def test_unit_determinant(self, mesh):
        u = gauge_wave_state(mesh.coordinates())
        from repro.bssn.geometry import det_sym, sym3x3

        det = det_sym(sym3x3(u[S.GT_SYM, ...]))
        assert np.allclose(det, 1.0, atol=1e-12)

    def test_constraints_converge(self):
        """The gauge wave is an exact solution: constraint residuals are
        pure truncation error and converge at high order."""
        norms = []
        for level in (2, 3):
            m = Mesh(LinearOctree.uniform(level, domain=Domain(-8.0, 8.0)))
            u = gauge_wave_state(m.coordinates())
            con = _constraints_on(m, u)
            sel = np.ones(m.num_octants, dtype=bool)
            sel[m.boundary_octants()] = False
            norms.append(np.abs(con["ham"][sel]).max())
        assert norms[0] / max(norms[1], 1e-30) > 16.0

    def test_nontrivial_gauge(self, mesh):
        u = gauge_wave_state(mesh.coordinates(), amplitude=0.05)
        assert np.abs(u[S.ALPHA] - 1.0).max() > 0.01
        assert np.abs(u[S.K]).max() > 0.0


class TestLinearWave:
    def test_constraints_second_order_in_amplitude(self, mesh):
        """H = O(A²): quartering A cuts the residual ~16x."""
        c = mesh.coordinates()
        norms = []
        for amp in (1e-4, 2.5e-5):
            u = linear_wave_state(c, amplitude=amp)
            con = _constraints_on(mesh, u)
            sel = np.ones(mesh.num_octants, dtype=bool)
            sel[mesh.boundary_octants()] = False
            norms.append(np.abs(con["ham"][sel]).max())
        ratio = norms[0] / max(norms[1], 1e-30)
        assert 8.0 < ratio < 32.0

    def test_traceless_perturbation(self, mesh):
        u = linear_wave_state(mesh.coordinates(), amplitude=1e-6)
        # h_yy = −h_zz to leading order
        dyy = u[S.GT22] - 1.0
        dzz = u[S.GT33] - 1.0
        assert np.allclose(dyy, -dzz, atol=1e-11)


class TestRobustStability:
    def test_noise_bounded_under_evolution(self):
        """Round-off noise on flat space must not blow up over a few
        steps (the robust-stability testbed)."""
        m = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
        u = robust_stability_state((m.num_octants, 7, 7, 7), amplitude=1e-10)
        s = BSSNSolver(m)
        s.set_state(u)
        for _ in range(3):
            s.step()
        dev = np.abs(s.state[S.ALPHA] - 1.0).max()
        assert np.isfinite(s.state).all()
        assert dev < 1e-6  # noise stays at noise level

    def test_reproducible_rng(self):
        a = robust_stability_state((2, 7, 7, 7))
        b = robust_stability_state((2, 7, 7, 7))
        assert np.array_equal(a, b)


class TestGaugeWaveEvolution:
    """Evolve the exact (left-moving) gauge-wave solution under harmonic
    slicing: the numerical lapse must track the analytic travelling
    profile — an end-to-end test of the full evolution stack (D + A +
    RK4 + unzip)."""

    @staticmethod
    def _alpha_exact(x, t, A=0.01, L=8.0, sign=+1):
        return np.sqrt(1.0 - A * np.sin(2.0 * np.pi * (x + sign * t) / L))

    def test_tracks_analytic_solution(self):
        m = Mesh(LinearOctree.uniform(3, domain=Domain(-8.0, 8.0)))
        u = gauge_wave_state(m.coordinates(), amplitude=0.01, wavelength=8.0)
        params = BSSNParams(
            lapse_c1=0.0, lapse_c2=0.5,  # harmonic slicing
            gauge_f=0.0,                  # frozen (zero) shift
            ko_sigma=0.0,
            use_upwind=False,
        )
        s = BSSNSolver(m, params)
        s.set_state(u)
        for _ in range(2):
            s.step()
        c = m.coordinates()
        # exclude boundary octants and their neighbours (Sommerfeld is not
        # the gauge-wave boundary condition)
        interior = np.ones(m.num_octants, dtype=bool)
        bo = m.boundary_octants()
        interior[bo] = False
        for b in bo:
            interior[m.adjacency.neighbors_of(int(b))] = False
        assert interior.sum() > 0

        alpha = s.state[S.ALPHA]
        err_left = np.abs(alpha - self._alpha_exact(c[..., 0], s.t))[interior].max()
        err_right = np.abs(
            alpha - self._alpha_exact(c[..., 0], s.t, sign=-1)
        )[interior].max()
        err_static = np.abs(
            alpha - self._alpha_exact(c[..., 0], 0.0)
        )[interior].max()
        # matches the travelling solution to truncation level ...
        assert err_left < 1e-8
        # ... and decisively rejects the wrong-direction / frozen profiles
        assert err_right > 1e4 * err_left
        assert err_static > 1e4 * err_left
