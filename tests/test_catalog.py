"""Tests for the waveform catalog builder (paper §I context)."""

import numpy as np
import pytest

from repro.analysis.catalog import (
    CatalogEntry,
    WaveformCatalog,
    build_model_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return build_model_catalog((1.0, 2.0, 4.0), samples=1024, duration=200.0)


class TestBuild:
    def test_entries(self, catalog):
        assert len(catalog) == 3
        assert np.allclose(catalog.mass_ratios, [1.0, 2.0, 4.0])
        for e in catalog.entries:
            assert np.isfinite(e.h22).all()
            assert "remnant_spin" in e.metadata

    def test_entry_lookup(self, catalog):
        e = catalog.entry(2.0)
        assert e.mass_ratio == 2.0
        with pytest.raises(KeyError):
            catalog.entry(16.0)

    def test_amplitude_decreases_with_q(self, catalog):
        """Higher mass ratio -> smaller symmetric mass ratio -> weaker
        (2,2) signal."""
        peaks = [np.abs(e.h22).max() for e in catalog.entries]
        assert peaks[0] > peaks[1] > peaks[2]


class TestMismatch:
    def test_matrix_properties(self, catalog):
        mm = catalog.mismatch_matrix()
        assert mm.shape == (3, 3)
        assert np.allclose(np.diag(mm), 0.0)
        assert np.allclose(mm, mm.T)
        assert np.all(mm >= 0.0)

    def test_distant_q_larger_mismatch(self, catalog):
        mm = catalog.mismatch_matrix()
        assert mm[0, 2] > mm[0, 1] * 0.5  # q=1 vs 4 at least comparable
        assert mm[0, 2] > 0.0

    def test_coverage_gaps(self, catalog):
        # with a tiny threshold every adjacent pair is a gap
        gaps = catalog.coverage_gaps(threshold=1e-9)
        assert len(gaps) == 2
        # with a huge threshold none are
        assert catalog.coverage_gaps(threshold=0.999) == []


class TestPersistence:
    def test_save_load_roundtrip(self, catalog, tmp_path):
        paths = catalog.save(tmp_path / "cat")
        assert len(paths) == 3
        loaded = WaveformCatalog.load(tmp_path / "cat")
        assert len(loaded) == 3
        for q in (1.0, 2.0, 4.0):
            a = catalog.entry(q)
            b = loaded.entry(q)
            assert np.allclose(a.h22, b.h22)
            assert np.allclose(a.times, b.times)


class TestLoadValidation:
    def _saved(self, catalog, tmp_path):
        catalog.save(tmp_path / "cat")
        return tmp_path / "cat"

    def test_torn_file_skipped_with_warning(self, catalog, tmp_path):
        d = self._saved(catalog, tmp_path)
        victim = d / "q2.npz"
        victim.write_bytes(victim.read_bytes()[:100])
        with pytest.warns(UserWarning, match="corrupt"):
            loaded = WaveformCatalog.load(d)
        assert len(loaded) == 2
        assert loaded.skipped == 1
        assert np.allclose(loaded.mass_ratios, [1.0, 4.0])

    def test_mismatched_grid_skipped(self, catalog, tmp_path):
        from repro.gw.extraction import ModeTimeSeries
        from repro.io.waveforms import save_modes

        d = self._saved(catalog, tmp_path)
        series = ModeTimeSeries()
        for t in np.linspace(0.0, 5.0, 16):
            series.append(float(t), {(2, 2): 1.0 + 0j})
        save_modes(d / "q3.npz", series, radius=float("inf"),
                   metadata={"mass_ratio": 3.0})
        with pytest.warns(UserWarning, match="time grid"):
            loaded = WaveformCatalog.load(d)
        assert len(loaded) == 3
        assert loaded.skipped == 1

    def test_nonfinite_samples_skipped(self, catalog, tmp_path):
        from repro.gw.extraction import ModeTimeSeries
        from repro.io.waveforms import save_modes

        d = self._saved(catalog, tmp_path)
        series = ModeTimeSeries()
        grid = catalog.entries[0].times
        for i, t in enumerate(grid):
            series.append(float(t),
                          {(2, 2): complex(np.nan if i == 3 else 1.0)})
        save_modes(d / "q0.5.npz", series, radius=float("inf"),
                   metadata={"mass_ratio": 0.5})
        with pytest.warns(UserWarning, match="non-finite"):
            loaded = WaveformCatalog.load(d)
        assert loaded.skipped == 1
        assert len(loaded) == 3


class TestInterpolate:
    def test_bracket(self, catalog):
        from repro.analysis.catalog import InterpolationError

        lo, hi = catalog.bracket(1.5)
        assert (lo.mass_ratio, hi.mass_ratio) == (1.0, 2.0)
        exact_lo, exact_hi = catalog.bracket(2.0)
        assert exact_lo is exact_hi
        for outside in (0.5, 8.0):
            with pytest.raises(InterpolationError):
                catalog.bracket(outside)

    def test_exact_point_passthrough(self, catalog):
        e = catalog.interpolate(2.0)
        assert not e.metadata["interpolated"]
        assert e.metadata["interpolation_mismatch_bound"] == 0.0
        assert np.allclose(e.h22, catalog.entry(2.0).h22)

    def test_bound_is_conservative(self, catalog):
        """The bracket-endpoint mismatch bounds the interpolant's true
        error (measured directly against a model waveform)."""
        from repro.gw.compare import mismatch

        q = 1.5
        e = catalog.interpolate(q)
        assert e.metadata["interpolated"]
        assert e.metadata["bracket"] == [1.0, 2.0]
        bound = e.metadata["interpolation_mismatch_bound"]
        truth = build_model_catalog((q,), samples=1024,
                                    duration=200.0).entry(q)
        dt = float(e.times[1] - e.times[0])
        actual = mismatch(e.h22, truth.h22, dt)
        assert 0.0 < actual < bound

    def test_budget_admission(self, catalog):
        from repro.analysis.catalog import InterpolationError

        with pytest.raises(InterpolationError, match="exceeds"):
            catalog.interpolate(3.0, max_mismatch=1e-9)
        # a generous budget admits the same point
        e = catalog.interpolate(3.0, max_mismatch=0.9)
        assert e.metadata["bracket"] == [2.0, 4.0]
