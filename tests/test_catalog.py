"""Tests for the waveform catalog builder (paper §I context)."""

import numpy as np
import pytest

from repro.analysis.catalog import (
    CatalogEntry,
    WaveformCatalog,
    build_model_catalog,
)


@pytest.fixture(scope="module")
def catalog():
    return build_model_catalog((1.0, 2.0, 4.0), samples=1024, duration=200.0)


class TestBuild:
    def test_entries(self, catalog):
        assert len(catalog) == 3
        assert np.allclose(catalog.mass_ratios, [1.0, 2.0, 4.0])
        for e in catalog.entries:
            assert np.isfinite(e.h22).all()
            assert "remnant_spin" in e.metadata

    def test_entry_lookup(self, catalog):
        e = catalog.entry(2.0)
        assert e.mass_ratio == 2.0
        with pytest.raises(KeyError):
            catalog.entry(16.0)

    def test_amplitude_decreases_with_q(self, catalog):
        """Higher mass ratio -> smaller symmetric mass ratio -> weaker
        (2,2) signal."""
        peaks = [np.abs(e.h22).max() for e in catalog.entries]
        assert peaks[0] > peaks[1] > peaks[2]


class TestMismatch:
    def test_matrix_properties(self, catalog):
        mm = catalog.mismatch_matrix()
        assert mm.shape == (3, 3)
        assert np.allclose(np.diag(mm), 0.0)
        assert np.allclose(mm, mm.T)
        assert np.all(mm >= 0.0)

    def test_distant_q_larger_mismatch(self, catalog):
        mm = catalog.mismatch_matrix()
        assert mm[0, 2] > mm[0, 1] * 0.5  # q=1 vs 4 at least comparable
        assert mm[0, 2] > 0.0

    def test_coverage_gaps(self, catalog):
        # with a tiny threshold every adjacent pair is a gap
        gaps = catalog.coverage_gaps(threshold=1e-9)
        assert len(gaps) == 2
        # with a huge threshold none are
        assert catalog.coverage_gaps(threshold=0.999) == []


class TestPersistence:
    def test_save_load_roundtrip(self, catalog, tmp_path):
        paths = catalog.save(tmp_path / "cat")
        assert len(paths) == 3
        loaded = WaveformCatalog.load(tmp_path / "cat")
        assert len(loaded) == 3
        for q in (1.0, 2.0, 4.0):
            a = catalog.entry(q)
            b = loaded.entry(q)
            assert np.allclose(a.h22, b.h22)
            assert np.allclose(a.times, b.times)
