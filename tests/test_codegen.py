"""Tests for the SymPy code-generation pipeline (paper §IV-B)."""

import numpy as np
import pytest

from repro.bssn import (
    BSSNParams,
    Puncture,
    bssn_rhs,
    mesh_puncture_state,
)
from repro.codegen import (
    VARIANTS,
    analyze_schedule,
    build_dag,
    get_algebra_kernel,
    get_kernel_spec,
    line_graph_schedule,
    max_live_values,
    symbolic_rhs,
)
from repro.codegen.graph import dfs_schedule
from repro.codegen.regalloc import Statement
from repro.mesh import Mesh
from repro.octree import LinearOctree


@pytest.fixture(scope="module")
def exprs_syms():
    return symbolic_rhs()


@pytest.fixture(scope="module")
def dag(exprs_syms):
    return build_dag(exprs_syms[0])


@pytest.fixture(scope="module")
def rhs_setup():
    mesh = Mesh(LinearOctree.uniform(2))
    u = mesh_puncture_state(
        mesh, [Puncture(1.0, [0.3, 0.2, 0.1], momentum=[0.0, 0.1, 0.0])]
    )
    p = mesh.unzip(u)
    ref = bssn_rhs(p, mesh.dx)
    return mesh, p, ref


class TestSymbolicEquations:
    def test_24_expressions(self, exprs_syms):
        exprs, syms = exprs_syms
        assert len(exprs) == 24
        # 234 input symbols: 24 values + 72 grads + 72 advective + 66 second
        assert len(syms) == 234

    def test_flat_space_evaluates_to_zero(self, exprs_syms):
        """Substituting Minkowski values into the symbolic RHS gives 0."""
        import sympy as sp

        exprs, syms = exprs_syms
        from repro.codegen.symbols import PARAM_SYMBOLS

        subs = {s: 0.0 for s in syms.values()}
        for name in ("alpha", "chi", "gt11", "gt22", "gt33"):
            subs[syms[name]] = 1.0
        for s in PARAM_SYMBOLS.values():
            subs[s] = 1.0
        for e in exprs:
            val = float(sp.sympify(e).evalf(subs=subs))
            assert abs(val) < 1e-12


class TestDag:
    def test_size_near_paper(self, dag):
        """Paper Fig. 10 context: composed DAG has 2516 nodes and 6708
        edges; the exact numbers depend on expression-tree details, so
        assert the same regime."""
        assert 1500 < dag.num_nodes < 8000
        assert 4000 < dag.num_edges < 16000

    def test_outputs(self, dag):
        assert len(dag.outputs) == 24
        for nid in dag.outputs:
            assert dag.nodes[nid].is_output

    def test_binary_arity(self, dag):
        for n in dag.nodes:
            if n.op in ("add", "mul"):
                assert len(n.args) == 2
            elif n.op == "pow":
                assert len(n.args) == 1
            else:
                assert n.op in ("input", "const")
                assert len(n.args) == 0

    def test_schedules_are_topological(self, dag):
        for sched in (dfs_schedule(dag), line_graph_schedule(dag)):
            assert len(sched) == dag.num_ops
            pos = {v: i for i, v in enumerate(sched)}
            for n in dag.nodes:
                for a in n.args:
                    if dag.nodes[a].args:  # interior operand
                        assert pos[a] < pos[n.id]


class TestKernels:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_reference(self, variant, rhs_setup):
        """The paper's three variants are algebraically identical; ours
        match the hand-vectorised reference to roundoff."""
        mesh, p, ref = rhs_setup
        alg = get_algebra_kernel(variant)
        r = bssn_rhs(p, mesh.dx, algebra=alg)
        scale = np.abs(ref).max()
        assert np.abs(r - ref).max() < 1e-12 * scale

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            get_kernel_spec("bogus")

    def test_staged_flops_equal_baseline(self):
        """Staging re-orders the same statements; no recomputation."""
        base = get_kernel_spec("sympygr")
        staged = get_kernel_spec("staged-cse")
        assert staged.total_flops == base.total_flops
        assert len(staged.statements) <= len(base.statements)

    def test_each_variant_emits_all_outputs(self):
        for v in VARIANTS:
            spec = get_kernel_spec(v)
            outs = {s.output_var for s in spec.statements if s.is_output}
            assert outs == set(range(24))


class TestSpillAnalysis:
    def test_table2_ordering(self):
        """Table II: SymPyGR spills most; binary-reduce and staged+CSE
        reduce spills, staged+CSE the most (stores)."""
        totals = {}
        stores = {}
        for v in VARIANTS:
            spec = get_kernel_spec(v)
            st = analyze_schedule(
                spec.statements, spec.input_names, input_defs=spec.input_defs
            )
            totals[v] = st.spill_bytes
            stores[v] = st.spill_store_bytes
        assert totals["sympygr"] > totals["binary-reduce"] > totals["staged-cse"]
        assert stores["sympygr"] > stores["staged-cse"]

    def test_max_live_regime(self):
        """Paper reports 675 live temporaries for binary-reduce."""
        spec = get_kernel_spec("binary-reduce")
        ml = max_live_values(spec.statements, spec.input_names)
        assert 100 < ml < 1500

    def test_bigger_budget_fewer_spills(self):
        spec = get_kernel_spec("sympygr")
        small = analyze_schedule(spec.statements, spec.input_names, budget=16)
        big = analyze_schedule(spec.statements, spec.input_names, budget=64)
        assert big.spill_bytes < small.spill_bytes

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            analyze_schedule([], set(), input_defs="sometimes")

    def test_trivial_schedule_no_spills(self):
        sts = [
            Statement("a", "x + y", ("x", "y")),
            Statement("rhs_0", "a * a", ("a",), is_output=True, output_var=0),
        ]
        st = analyze_schedule(sts, {"x", "y"}, budget=8, input_defs="on-demand")
        assert st.spill_bytes == 0
        assert st.max_live <= 3


class TestScheduleDiskCache:
    """PR 6: the disk cache validates a stored schedule digest on load
    and *evicts* corrupt or stale entries instead of silently serving
    (or silently regenerating around) them."""

    def test_roundtrip(self, tmp_path, monkeypatch):
        from repro.codegen import generators as G

        spec = get_kernel_spec("staged-cse")
        monkeypatch.setattr(G, "_cache_dir", lambda: tmp_path)
        G._store_cached_spec(spec)
        back = G._load_cached_spec("staged-cse")
        assert back is not None
        assert [s.src for s in back.statements] == [s.src for s in spec.statements]
        assert back.input_defs == spec.input_defs

    def test_corrupt_pickle_evicted(self, tmp_path, monkeypatch):
        from repro.codegen import generators as G

        spec = get_kernel_spec("staged-cse")
        monkeypatch.setattr(G, "_cache_dir", lambda: tmp_path)
        G._store_cached_spec(spec)
        path, = tmp_path.glob("staged-cse-*.pkl")
        path.write_bytes(b"not a pickle")
        assert G._load_cached_spec("staged-cse") is None
        assert not path.exists(), "corrupt entry must be unlinked"

    def test_stale_digest_evicted(self, tmp_path, monkeypatch):
        """A payload whose statements no longer match its recorded digest
        (e.g. a partial write or a hand-edited file) is evicted."""
        import pickle

        from repro.codegen import generators as G

        spec = get_kernel_spec("staged-cse")
        monkeypatch.setattr(G, "_cache_dir", lambda: tmp_path)
        G._store_cached_spec(spec)
        path, = tmp_path.glob("staged-cse-*.pkl")
        data = pickle.loads(path.read_bytes())
        data["statements"][0]["src"] = "tampered + 1.0"
        path.write_bytes(pickle.dumps(data))
        assert G._load_cached_spec("staged-cse") is None
        assert not path.exists(), "stale entry must be unlinked"

    def test_store_prunes_other_keys(self, tmp_path, monkeypatch):
        """Old-generator-version artefacts at the same variant don't
        accumulate: storing under a new key removes superseded files."""
        from repro.codegen import generators as G

        spec = get_kernel_spec("staged-cse")
        monkeypatch.setattr(G, "_cache_dir", lambda: tmp_path)
        stale = tmp_path / "staged-cse-deadbeef00000000.pkl"
        stale.write_bytes(b"old generator version")
        G._store_cached_spec(spec)
        assert not stale.exists()
        assert len(list(tmp_path.glob("staged-cse-*.pkl"))) == 1
