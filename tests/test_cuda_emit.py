"""Tests for the CUDA-C emission of the generated kernels."""

import re

import pytest

from repro.codegen import VARIANTS, get_kernel_spec
from repro.codegen.cuda_emit import (
    LAUNCH_BOUNDS,
    CudaValidationError,
    deriv_input_order,
    emit_cuda,
    validate_cuda_source,
)


@pytest.fixture(scope="module", params=VARIANTS)
def cuda_source(request):
    spec = get_kernel_spec(request.param)
    return request.param, spec, emit_cuda(spec)


def test_launch_bounds_match_paper(cuda_source):
    """Table II's configuration: __launch_bounds__(343, 3)."""
    _, _, src = cuda_source
    assert LAUNCH_BOUNDS == (343, 3)
    assert "__launch_bounds__(343, 3)" in src


def test_all_outputs_written(cuda_source):
    _, _, src = cuda_source
    written = set(int(m) for m in re.findall(r"out\[(\d+)\]\[pp\]", src))
    assert written == set(range(24))


def test_single_assignment_form(cuda_source):
    """Every temporary is const and defined exactly once."""
    _, _, src = cuda_source
    defs = re.findall(r"const double (\w+) =", src)
    assert len(defs) == len(set(defs))


def test_no_python_operators_leak(cuda_source):
    _, _, src = cuda_source
    assert "**" not in src
    assert "numpy" not in src


def test_deriv_inputs_declared(cuda_source):
    _, spec, src = cuda_source
    order = deriv_input_order(spec)
    assert len(order) > 100  # most of the 210 derivatives are used
    for i, name in enumerate(order[:5]):
        assert f"const double {name} = d[{i}][pp];" in src


def test_statement_count_scales_with_spec(cuda_source):
    variant, spec, src = cuda_source
    # one C statement per generated statement (plus declarations)
    assert src.count(";") >= len(spec.statements)


def test_variants_differ_in_body():
    a = emit_cuda(get_kernel_spec("sympygr"))
    b = emit_cuda(get_kernel_spec("binary-reduce"))
    assert a != b


# -- symbol-table validation ------------------------------------------------


def test_emitted_source_validates(cuda_source):
    """emit_cuda validates internally; re-running must also pass."""
    _, spec, src = cuda_source
    validate_cuda_source(spec, src)  # does not raise


def test_validation_catches_undeclared_symbol(cuda_source):
    _, spec, src = cuda_source
    bad = src.replace("[pp] = ", "[pp] = bogus_undeclared + ", 1)
    with pytest.raises(CudaValidationError, match="bogus_undeclared"):
        validate_cuda_source(spec, bad)


def test_validation_catches_missing_output(cuda_source):
    _, spec, src = cuda_source
    lines = [ln for ln in src.splitlines() if "out[0][pp]" not in ln]
    with pytest.raises(CudaValidationError, match="never written"):
        validate_cuda_source(spec, "\n".join(lines))


def test_validation_catches_redeclaration(cuda_source):
    _, spec, src = cuda_source
    lines = src.splitlines()
    decl = next(
        i for i, ln in enumerate(lines)
        if ln.strip().startswith("const double ") and " = " in ln
        and "= d[" not in ln and "= u[" not in ln
    )
    lines.insert(decl + 1, lines[decl])
    with pytest.raises(CudaValidationError, match="redeclared"):
        validate_cuda_source(spec, "\n".join(lines))


def test_validation_catches_symbol_not_in_schedule(cuda_source):
    _, spec, src = cuda_source
    extra = "    const double rogue_temp = 1.0;\n}"
    with pytest.raises(CudaValidationError, match="symbol table"):
        validate_cuda_source(spec, src.replace("}", extra, 1))
