"""Tests for the CUDA-C emission of the generated kernels."""

import re

import pytest

from repro.codegen import VARIANTS, get_kernel_spec
from repro.codegen.cuda_emit import LAUNCH_BOUNDS, deriv_input_order, emit_cuda


@pytest.fixture(scope="module", params=VARIANTS)
def cuda_source(request):
    spec = get_kernel_spec(request.param)
    return request.param, spec, emit_cuda(spec)


def test_launch_bounds_match_paper(cuda_source):
    """Table II's configuration: __launch_bounds__(343, 3)."""
    _, _, src = cuda_source
    assert LAUNCH_BOUNDS == (343, 3)
    assert "__launch_bounds__(343, 3)" in src


def test_all_outputs_written(cuda_source):
    _, _, src = cuda_source
    written = set(int(m) for m in re.findall(r"out\[(\d+)\]\[pp\]", src))
    assert written == set(range(24))


def test_single_assignment_form(cuda_source):
    """Every temporary is const and defined exactly once."""
    _, _, src = cuda_source
    defs = re.findall(r"const double (\w+) =", src)
    assert len(defs) == len(set(defs))


def test_no_python_operators_leak(cuda_source):
    _, _, src = cuda_source
    assert "**" not in src
    assert "numpy" not in src


def test_deriv_inputs_declared(cuda_source):
    _, spec, src = cuda_source
    order = deriv_input_order(spec)
    assert len(order) > 100  # most of the 210 derivatives are used
    for i, name in enumerate(order[:5]):
        assert f"const double {name} = d[{i}][pp];" in src


def test_statement_count_scales_with_spec(cuda_source):
    variant, spec, src = cuda_source
    # one C statement per generated statement (plus declarations)
    assert src.count(";") >= len(spec.statements)


def test_variants_differ_in_body():
    a = emit_cuda(get_kernel_spec("sympygr"))
    b = emit_cuda(get_kernel_spec("binary-reduce"))
    assert a != b
