"""The rank-parallel wave solver must agree with the single-rank one."""

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree, bbh_grid, partition_octree
from repro.parallel import DistributedWaveSolver
from repro.solver import GaussianSource, WaveSolver


def _source():
    return GaussianSource(lambda t: np.exp(-(((t - 0.5) / 0.3) ** 2)), width=1.0)


@pytest.mark.parametrize("ranks", [2, 3, 5])
def test_matches_single_rank(ranks):
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
    ref = WaveSolver(mesh, source=_source(), ko_sigma=0.05)
    for _ in range(3):
        ref.step()

    part = partition_octree(mesh.tree, ranks)
    dist = DistributedWaveSolver(mesh, part, source=_source(), ko_sigma=0.05)
    for _ in range(3):
        dist.step()
    assert np.allclose(dist.gather_state(), ref.state, atol=1e-13)
    assert dist.t == pytest.approx(ref.t)


def test_adaptive_grid_with_level_boundaries():
    """Cross-rank coarse/fine interfaces exchange and interpolate right."""
    tree = bbh_grid(mass_ratio=2.0, max_level=5, base_level=2,
                    domain=Domain(-16.0, 16.0))
    mesh = Mesh(tree)
    ref = WaveSolver(mesh, source=_source(), ko_sigma=0.05)
    ref.step()

    part = partition_octree(tree, 4)
    dist = DistributedWaveSolver(mesh, part, source=_source(), ko_sigma=0.05)
    dist.step()
    assert np.allclose(dist.gather_state(), ref.state, atol=1e-13)


def test_communication_happens_every_stage():
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
    part = partition_octree(mesh.tree, 2)
    dist = DistributedWaveSolver(mesh, part, source=_source())
    dist.step()
    b1 = dist.bytes_communicated()
    assert b1 > 0
    dist.step()
    assert dist.bytes_communicated() == 2 * b1  # 4 exchanges per step

    # volume matches the halo plan
    per_exchange = dist.halo.bytes_per_exchange(r=7, dof=2).sum()
    assert b1 == 4 * per_exchange


def test_set_and_gather_state_roundtrip():
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
    part = partition_octree(mesh.tree, 3)
    dist = DistributedWaveSolver(mesh, part)
    rng = np.random.default_rng(0)
    u = rng.normal(size=(2, mesh.num_octants, 7, 7, 7))
    dist.set_state(u)
    assert np.array_equal(dist.gather_state(), u)


def test_distributed_bssn_matches_single_rank():
    """The full 24-variable BSSN evolution through the rank-parallel
    driver equals the single-rank solver to roundoff (Fig. 21's multi-GPU
    correctness property)."""
    from repro.bssn import Puncture, mesh_puncture_state
    from repro.parallel import DistributedBSSNSolver
    from repro.solver import BSSNSolver

    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-10.0, 10.0)))
    u0 = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
    ref = BSSNSolver(mesh)
    ref.set_state(u0.copy())
    ref.step()

    part = partition_octree(mesh.tree, 3)
    dist = DistributedBSSNSolver(mesh, part)
    dist.set_state(u0.copy())
    dist.step()
    assert np.allclose(dist.gather_state(), ref.state, atol=1e-13)
    assert dist.bytes_communicated() > 0
