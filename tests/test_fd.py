"""Tests for FD stencils and patch derivatives: consistency and order."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import (
    D1_CENTERED_6,
    D2_CENTERED_6,
    KO_DISS_6,
    PatchDerivatives,
    Stencil,
    apply_stencil,
    fd_weights,
    one_sided_first,
)

R, K = 7, 3
P = R + 2 * K


def _patch(fn):
    """Evaluate fn(x, y, z) on a padded patch lattice with h = 0.1."""
    h = 0.1
    c = (np.arange(P) - K) * h
    z, y, x = np.meshgrid(c, c, c, indexing="ij")
    return fn(x, y, z)[None, ...], h


class TestFornberg:
    def test_centered_first_matches_table(self):
        w = fd_weights(np.arange(-3, 4, dtype=float), 0.0, 1)
        assert np.allclose(w, D1_CENTERED_6.weights)

    def test_centered_second_matches_table(self):
        w = fd_weights(np.arange(-3, 4, dtype=float), 0.0, 2)
        assert np.allclose(w, D2_CENTERED_6.weights)

    def test_interpolation_weights(self):
        # m = 0 gives interpolation weights; at a node they are a delta
        w = fd_weights(np.arange(-3, 4, dtype=float), 1.0, 0)
        assert np.allclose(w, [0, 0, 0, 0, 1, 0, 0], atol=1e-12)

    def test_exact_on_polynomials(self):
        nodes = np.array([-2.0, -1.0, 0.0, 1.0, 2.0, 3.0])
        w = fd_weights(nodes, 0.3, 1)
        for p in range(6):
            val = np.sum(w * nodes**p)
            expect = p * 0.3 ** (p - 1) if p >= 1 else 0.0
            assert np.isclose(val, expect, atol=1e-10)

    def test_rejects_high_order(self):
        with pytest.raises(ValueError):
            fd_weights(np.array([0.0, 1.0]), 0.0, 2)


class TestStencilObject:
    def test_width_and_sides(self):
        assert D1_CENTERED_6.width == 6
        assert D1_CENTERED_6.left == 3
        assert D1_CENTERED_6.right == 3

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Stencil([0, 1], [1.0], 1)

    def test_one_sided(self):
        sl = one_sided_first("left")
        sr = one_sided_first("right")
        assert sl.left == 0 and sr.right == 0
        with pytest.raises(ValueError):
            one_sided_first("middle")


class TestApplyStencil:
    def test_linear_exact(self):
        u = np.arange(20.0).reshape(1, 1, 1, 20)
        d = apply_stencil(u, D1_CENTERED_6, 1.0, axis=3)
        assert d.shape == (1, 1, 1, 14)
        assert np.allclose(d, 1.0)

    def test_too_short_axis(self):
        u = np.zeros((1, 1, 1, 5))
        with pytest.raises(ValueError):
            apply_stencil(u, D1_CENTERED_6, 1.0, axis=3)

    def test_out_buffer(self):
        u = np.arange(20.0).reshape(1, 1, 1, 20)
        out = np.empty((1, 1, 1, 14))
        d = apply_stencil(u, D1_CENTERED_6, 1.0, axis=3, out=out)
        assert d is out
        with pytest.raises(ValueError):
            apply_stencil(u, D1_CENTERED_6, 1.0, axis=3, out=np.empty((1, 1, 1, 3)))


class TestPatchDerivatives:
    pd = PatchDerivatives(k=K)

    def test_polynomial_exact_d1(self):
        """6th-order stencils are exact for degree-6 polynomials."""
        u, h = _patch(lambda x, y, z: x**6 + y**3 * x**2 + z)
        dx = self.pd.d1(u, h, 0)
        c = (np.arange(R)) * h
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        assert np.allclose(dx[0], 6 * x**5 + 2 * y**3 * x, atol=1e-9)

    def test_polynomial_exact_d2(self):
        u, h = _patch(lambda x, y, z: x**6 + z**4)
        dzz = self.pd.d2(u, h, 2)
        c = (np.arange(R)) * h
        z, _, _ = np.meshgrid(c, c, c, indexing="ij")
        assert np.allclose(dzz[0], 12 * z**2, atol=1e-8)

    def test_mixed_derivative(self):
        u, h = _patch(lambda x, y, z: x**3 * y**2)
        dxy = self.pd.d2_mixed(u, h, 0, 1)
        c = (np.arange(R)) * h
        _, y, x = np.meshgrid(c, c, c, indexing="ij")
        assert np.allclose(dxy[0], 6 * x**2 * y, atol=1e-9)

    def test_mixed_same_direction_falls_back(self):
        u, h = _patch(lambda x, y, z: x**4)
        assert np.allclose(self.pd.d2_mixed(u, h, 0, 0), self.pd.d2(u, h, 0))

    def test_convergence_order_six(self):
        """Error in d1 of sin(x) drops ~64x when h halves."""
        errs = []
        for n in (1, 2):
            h = 0.2 / n
            c = (np.arange(R + 2 * K) - K) * h
            z, y, x = np.meshgrid(c, c, c, indexing="ij")
            u = np.sin(x)[None]
            dx = self.pd.d1(u, h, 0)
            ci = np.arange(R) * h
            zi, yi, xi = np.meshgrid(ci, ci, ci, indexing="ij")
            errs.append(np.abs(dx[0] - np.cos(xi)).max())
        rate = np.log2(errs[0] / errs[1])
        assert 5.5 < rate < 6.8

    def test_ko_kills_nyquist(self):
        """KO dissipation is maximally negative on the Nyquist mode."""
        h = 0.1
        c = np.arange(P)
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        u = ((-1.0) ** x)[None]
        ko = self.pd.ko(u, h, 0)
        ci = np.arange(R)
        zi, yi, xi = np.meshgrid(ci, ci, ci, indexing="ij")
        sign = (-1.0) ** (xi + K)  # interior starts K points into the patch
        assert np.allclose(ko[0], -sign / h, atol=1e-12)

    def test_ko_vanishes_on_smooth(self):
        u, h = _patch(lambda x, y, z: 1.0 + x + x**2 + y**3 + z**4 + x**5)
        ko = self.pd.ko_all(u, h)
        assert np.abs(ko).max() < 1e-8

    def test_upwind_matches_centered_on_smooth(self):
        u, h = _patch(lambda x, y, z: np.sin(x + 0.5 * y))
        beta = np.ones((1, R, R, R))
        dup = self.pd.d1_upwind(u, h, 0, beta)
        dc = self.pd.d1(u, h, 0)
        assert np.allclose(dup, dc, atol=1e-5)

    def test_upwind_sign_selection(self):
        u, h = _patch(lambda x, y, z: x**5)  # degree 5: both biased exact
        beta = np.ones((1, R, R, R))
        dpos = self.pd.d1_upwind(u, h, 0, beta)
        dneg = self.pd.d1_upwind(u, h, 0, -beta)
        c = np.arange(R) * h
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        assert np.allclose(dpos[0], 5 * x**4, atol=1e-8)
        assert np.allclose(dneg[0], 5 * x**4, atol=1e-8)

    def test_axis_convention(self):
        """direction 0 differentiates the fastest (last) array axis."""
        u, h = _patch(lambda x, y, z: x)
        assert np.allclose(self.pd.d1(u, h, 0), 1.0)
        assert np.allclose(self.pd.d1(u, h, 1), 0.0, atol=1e-12)
        u, h = _patch(lambda x, y, z: z)
        assert np.allclose(self.pd.d1(u, h, 2), 1.0)

    def test_all_first_and_second(self):
        u, h = _patch(lambda x, y, z: x * y + z * z)
        firsts = self.pd.all_first(u, h)
        assert len(firsts) == 3
        seconds = self.pd.all_second(u, h)
        assert set(seconds) == {(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}
        assert np.allclose(seconds[(2, 2)], 2.0)
        assert np.allclose(seconds[(0, 1)], 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            self.pd.d1(np.zeros((5, 5, 5)), 0.1, 0)
        with pytest.raises(ValueError):
            self.pd.d1(np.zeros((1, 5, 5, 5)), 0.1, 0)


@given(
    amp=st.floats(0.1, 2.0),
    k1=st.integers(1, 3),
    direction=st.integers(0, 2),
)
@settings(max_examples=25, deadline=None)
def test_derivative_linearity(amp, k1, direction):
    """Property: D(a u + v) = a D(u) + D(v)."""
    pd = PatchDerivatives(k=K)
    h = 0.07
    c = (np.arange(P) - K) * h
    z, y, x = np.meshgrid(c, c, c, indexing="ij")
    u = np.sin(k1 * x + y)[None]
    v = np.cos(z - 2 * x)[None]
    left = pd.d1(amp * u + v, h, direction)
    right = amp * pd.d1(u, h, direction) + pd.d1(v, h, direction)
    assert np.allclose(left, right, rtol=1e-10, atol=1e-12)


class TestFourthOrder:
    """The 'deriv644' fallback order (4th-order stencils, 5-point KO)."""

    pd4 = PatchDerivatives(k=K, order=4)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PatchDerivatives(k=3, order=5)

    def test_shapes_match_order6(self):
        u, h = _patch(lambda x, y, z: x**2)
        assert self.pd4.d1(u, h, 0).shape == (1, R, R, R)
        assert self.pd4.d2(u, h, 1).shape == (1, R, R, R)
        assert self.pd4.d2_mixed(u, h, 0, 2).shape == (1, R, R, R)
        assert self.pd4.ko(u, h, 2).shape == (1, R, R, R)

    def test_exact_on_degree4(self):
        u, h = _patch(lambda x, y, z: x**4 + y**3)
        c = np.arange(R) * h
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        assert np.allclose(self.pd4.d1(u, h, 0)[0], 4 * x**3, atol=1e-9)
        assert np.allclose(self.pd4.d2(u, h, 0)[0], 12 * x**2, atol=1e-8)

    def test_convergence_rate_four(self):
        errs = []
        for n in (1, 2):
            h = 0.2 / n
            c = (np.arange(P) - K) * h
            z, y, x = np.meshgrid(c, c, c, indexing="ij")
            dx = self.pd4.d1(np.sin(x)[None], h, 0)
            ci = np.arange(R) * h
            zi, yi, xi = np.meshgrid(ci, ci, ci, indexing="ij")
            errs.append(np.abs(dx[0] - np.cos(xi)).max())
        rate = np.log2(errs[0] / errs[1])
        assert 3.5 < rate < 4.6

    def test_ko5_damps_nyquist(self):
        h = 0.1
        c = np.arange(P)
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        u = ((-1.0) ** x)[None]
        ko = self.pd4.ko(u, h, 0)
        ci = np.arange(R)
        zi, yi, xi = np.meshgrid(ci, ci, ci, indexing="ij")
        sign = (-1.0) ** (xi + K)
        assert np.allclose(ko[0], -sign / h, atol=1e-12)
