"""Tests for the virtual-GPU substrate: performance model, counters,
roofline, block executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100,
    EPYC_7763_NODE,
    KernelStats,
    VirtualGPU,
    achieved_gflops,
    attainable_gflops,
    block_octant_to_patch,
    derivative_flops_per_point,
    is_bandwidth_bound,
    kernel_time,
    octant_to_patch_stats,
    paper_o_a,
    patch_to_octant_stats,
    place_kernel,
    qa_algebraic,
    ql_rhs,
    qu_octant_to_patch,
    rhs_stats,
    roofline_curve,
    time_finite_cache,
    time_infinite_cache,
)
from repro.mesh import Mesh
from repro.octree import LinearOctree, adaptivity_family, balance, bbh_grid


class TestMachineModel:
    def test_a100_paper_parameters(self):
        """§III-D: τ_f = 1e-13, τ_m = 6.4e-13, ξ ≈ 4e-8, balance ≈ 6.25."""
        assert A100.tau_f == 1.0e-13
        assert A100.tau_m == 6.4e-13
        assert 5.5 < A100.balance < 7.0
        assert 2e-8 < A100.xi < 6e-8

    def test_peaks(self):
        assert np.isclose(A100.peak_gflops, 1e4)  # 10 TF/s fp64
        assert np.isclose(A100.peak_bandwidth_gbs, 1562.5)
        # EPYC node: slower memory, comparable-ish flops
        assert EPYC_7763_NODE.peak_bandwidth_gbs < A100.peak_bandwidth_gbs

    def test_infinite_cache_model(self):
        s = KernelStats("k", flops=1e9, bytes_moved=1e9)
        t = time_infinite_cache(s, A100)
        assert np.isclose(t, 1e9 * 1e-13 + 1e9 * 6.4e-13)

    def test_finite_cache_model_penalises_large_m(self):
        small = KernelStats("k", flops=0, bytes_moved=1e6)
        large = KernelStats("k", flops=0, bytes_moved=1e9)
        # m*xi < 1 for 1 MB: finite == infinite
        assert np.isclose(time_finite_cache(small), time_infinite_cache(small))
        # m*xi > 1 for 1 GB: finite model slower
        assert time_finite_cache(large) > time_infinite_cache(large)

    def test_invalid_model_name(self):
        with pytest.raises(ValueError):
            kernel_time(KernelStats("k", 1, 1), A100, model="quantum")


class TestPaperBounds:
    def test_qu_eq20(self):
        assert abs(qu_octant_to_patch() - 5.07) < 0.01

    def test_ql_eq21a(self):
        o_a = paper_o_a()
        assert abs(ql_rhs(o_a) - 6.68) < 0.01

    def test_qa_eq21b(self):
        # Eq. 21b's O_A (for the A kernel alone): Q_A = O_A/(8*258)
        o_a_alg = int(round(1.94 * 8 * 258))
        assert abs(qa_algebraic(o_a_alg) - 1.94) < 0.01

    def test_rhs_observed_ai_with_spills_matches_paper(self):
        """The paper observes overall RHS AI ≈ 0.62 ≪ 6.68 once spill and
        miss traffic is included (§V-A).  Adding the baseline variant's
        spill traffic to the ideal kernel lands in the same regime."""
        ideal = rhs_stats(1000, o_a=paper_o_a())
        assert 5.0 < ideal.ai < 10.0  # near the Q_L bound
        spilled = rhs_stats(1000, o_a=paper_o_a(), spill_bytes_per_point=19136.0)
        observed = spilled.flops / (spilled.bytes_moved + spilled.extra_slow_bytes)
        assert 0.3 < observed < 1.2
        assert is_bandwidth_bound(
            KernelStats("rhs-observed", spilled.flops,
                        spilled.bytes_moved + spilled.extra_slow_bytes),
            A100,
        )


class TestCounters:
    def test_unzip_ai_below_bound(self):
        mesh = Mesh(bbh_grid(mass_ratio=2.0, max_level=6, base_level=2))
        s = octant_to_patch_stats(mesh.plan)
        assert 0.0 < s.ai <= qu_octant_to_patch() + 1e-9

    def test_uniform_grid_zero_interp_flops(self):
        mesh = Mesh(LinearOctree.uniform(2))
        s = octant_to_patch_stats(mesh.plan)
        assert s.flops == 0.0

    def test_gather_moves_more_bytes(self):
        mesh = Mesh(bbh_grid(mass_ratio=2.0, max_level=6, base_level=2))
        sc = octant_to_patch_stats(mesh.plan, mode="scatter")
        ga = octant_to_patch_stats(mesh.plan, mode="gather")
        assert ga.bytes_moved > sc.bytes_moved
        assert ga.flops == sc.flops
        with pytest.raises(ValueError):
            octant_to_patch_stats(mesh.plan, mode="sideways")

    def test_p2o_zero_ai(self):
        mesh = Mesh(LinearOctree.uniform(2))
        s = patch_to_octant_stats(mesh.plan)
        assert s.flops == 0.0
        assert s.bytes_moved > 0

    def test_table3_ai_decreases_with_uniformity(self):
        ais = []
        for i in range(1, 6):
            mesh = Mesh(adaptivity_family(i))
            ais.append(octant_to_patch_stats(mesh.plan).ai)
        assert all(a >= b for a, b in zip(ais, ais[1:]))

    def test_derivative_flops(self):
        assert derivative_flops_per_point(False) < derivative_flops_per_point(True)

    def test_spill_bytes_slow_down_rhs(self):
        clean = rhs_stats(100, o_a=4000)
        spilled = rhs_stats(100, o_a=4000, spill_bytes_per_point=2500.0)
        assert kernel_time(spilled) > kernel_time(clean)


class TestRoofline:
    def test_curve_monotone_then_flat(self):
        q, g = roofline_curve(A100)
        assert np.all(np.diff(g) >= -1e-9)
        assert np.isclose(g[-1], A100.peak_gflops)

    def test_ceiling(self):
        assert np.isclose(attainable_gflops(1.0), A100.peak_bandwidth_gbs)
        assert np.isclose(attainable_gflops(1e3), A100.peak_gflops)

    def test_placed_kernel_below_ceiling(self):
        mesh = Mesh(bbh_grid(mass_ratio=2.0, max_level=6, base_level=2))
        s = octant_to_patch_stats(mesh.plan)
        p = place_kernel(s)
        assert p.gflops <= p.ceiling * (1.0 + 1e-9)
        assert 0.0 < p.efficiency <= 1.0


class TestVirtualGPU:
    def test_timeline(self):
        gpu = VirtualGPU()
        t1 = gpu.launch(KernelStats("a", 1e9, 1e8))
        t2 = gpu.launch(KernelStats("b", 0, 1e8))
        assert gpu.total_time() == pytest.approx(t1 + t2)
        assert set(gpu.time_by_kernel()) == {"a", "b"}
        gpu.reset()
        assert gpu.total_time() == 0.0

    def test_block_executor_matches_vectorised(self):
        t = LinearOctree.uniform(1)
        flags = np.zeros(8, dtype=bool)
        flags[0] = True
        mesh = Mesh(balance(t.refine(flags)))
        c = mesh.coordinates()
        u = np.sin(0.3 * c[..., 0]) * np.cos(0.2 * c[..., 1]) + c[..., 2] ** 2
        pv = mesh.unzip(u)
        pb = block_octant_to_patch(mesh.plan, u)
        assert np.array_equal(pv, pb)

    def test_block_executor_validates_shape(self):
        mesh = Mesh(LinearOctree.uniform(1))
        with pytest.raises(ValueError):
            block_octant_to_patch(mesh.plan, np.zeros((2, 8, 7, 7, 7)))


@given(f=st.floats(1e3, 1e12), m=st.floats(1e3, 1e12))
@settings(max_examples=30, deadline=None)
def test_model_monotonicity(f, m):
    """More work or more traffic never makes a kernel faster."""
    base = kernel_time(KernelStats("k", f, m))
    assert kernel_time(KernelStats("k", 2 * f, m)) >= base
    assert kernel_time(KernelStats("k", f, 2 * m)) >= base


class TestOccupancy:
    def test_launch_bounds_register_cap_near_paper(self):
        """__launch_bounds__(343, 3) caps registers near the paper's
        'maximum 56 registers per thread' (ptxas reserves a few more)."""
        from repro.gpu import registers_per_thread_cap

        cap = registers_per_thread_cap(343, 3)
        assert 50 <= cap <= 64

    def test_paper_rhs_config_is_register_limited(self):
        from repro.gpu import paper_rhs_occupancy

        occ = paper_rhs_occupancy()
        assert occ.blocks_per_sm == 3  # the launch bounds' promise
        assert occ.limited_by == "registers"
        assert 0.3 < occ.occupancy < 0.8

    def test_more_registers_fewer_blocks(self):
        from repro.gpu import occupancy_for

        a = occupancy_for(343, 32)
        b = occupancy_for(343, 128)
        assert a.blocks_per_sm > b.blocks_per_sm

    def test_shared_memory_can_limit(self):
        from repro.gpu import occupancy_for

        occ = occupancy_for(128, 16, shared_bytes_per_block=100_000)
        assert occ.limited_by == "shared"
        assert occ.blocks_per_sm == 1

    def test_validation(self):
        from repro.gpu import occupancy_for, registers_per_thread_cap

        with pytest.raises(ValueError):
            occupancy_for(5000, 32)
        with pytest.raises(ValueError):
            registers_per_thread_cap(0, 1)
