"""The block-level fused RHS executor (Fig. 9 structure) must agree with
the batched host path."""

import numpy as np
import pytest

from repro.bssn import BSSNParams, Puncture, bssn_rhs, mesh_puncture_state
from repro.gpu import block_bssn_rhs
from repro.mesh import Mesh
from repro.octree import LinearOctree


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh(LinearOctree.uniform(1))
    u = mesh_puncture_state(
        mesh, [Puncture(1.0, [0.3, 0.1, -0.2], momentum=[0.0, 0.1, 0.0])]
    )
    return mesh, mesh.unzip(u)


def test_block_rhs_matches_batched(setup):
    mesh, patches = setup
    params = BSSNParams()
    ref = bssn_rhs(patches, mesh.dx, params)
    blk = block_bssn_rhs(patches, mesh.dx, params)
    assert np.allclose(blk, ref, rtol=0, atol=1e-13 * np.abs(ref).max())


def test_block_rhs_with_generated_kernel(setup):
    from repro.codegen import get_algebra_kernel

    mesh, patches = setup
    params = BSSNParams()
    alg = get_algebra_kernel("staged-cse")
    ref = bssn_rhs(patches, mesh.dx, params, algebra=alg)
    blk = block_bssn_rhs(patches, mesh.dx, params, algebra=alg)
    assert np.allclose(blk, ref, rtol=0, atol=1e-13 * np.abs(ref).max())


def test_block_rhs_validates_vars(setup):
    mesh, patches = setup
    with pytest.raises(ValueError):
        block_bssn_rhs(patches[:5], mesh.dx)
