"""Tests for the cache simulator: it must reproduce the finite-cache
regime change that §III-D's max(1, m ξ) term models."""

import numpy as np
import pytest

from repro.gpu.memory import (
    CacheConfig,
    LRUCache,
    effective_reuse_factor,
    repeated_pass_miss_rate,
    stream_pass_addresses,
)

SMALL = CacheConfig(size_bytes=64 * 1024, line_bytes=64, ways=8)


class TestLRUCache:
    def test_cold_misses(self):
        c = LRUCache(SMALL)
        c.access(np.arange(0, 4096, 64))
        assert c.misses == 64
        assert c.hits == 0

    def test_rereference_hits(self):
        c = LRUCache(SMALL)
        addrs = np.arange(0, 4096, 64)
        c.access(addrs)
        c.access(addrs)
        assert c.hits == 64

    def test_same_line_coalesced(self):
        c = LRUCache(SMALL)
        c.access(np.arange(0, 64, 8))  # 8 accesses, one line
        assert c.hits + c.misses == 1

    def test_capacity_eviction(self):
        c = LRUCache(SMALL)
        lines = SMALL.size_bytes // SMALL.line_bytes
        addrs = np.arange(0, 4 * lines * SMALL.line_bytes, SMALL.line_bytes)
        c.access(addrs)
        c.reset_counters()
        c.access(addrs)  # working set 4x the cache: thrash
        assert c.miss_rate > 0.9

    def test_empty_stream(self):
        c = LRUCache(SMALL)
        c.access(np.zeros(0, dtype=np.int64))
        assert c.hits == c.misses == 0


class TestFiniteCacheRegime:
    def test_fits_in_cache_rereads_free(self):
        """m ξ < 1: later passes hit — memory time ~ m τ_m."""
        mr = repeated_pass_miss_rate(SMALL.size_bytes // 4, passes=4,
                                     config=SMALL)
        assert mr < 0.35  # ~1/4: only the cold pass misses

    def test_exceeds_cache_every_pass_misses(self):
        """m ξ > 1: LRU streaming thrashes — memory time ~ m τ_m · passes."""
        mr = repeated_pass_miss_rate(SMALL.size_bytes * 4, passes=4,
                                     config=SMALL)
        assert mr > 0.95

    def test_reuse_factor_transitions(self):
        """The empirical analogue of max(1, m ξ): traffic amplification
        jumps from ~1 to ~passes across the cache-size boundary."""
        below = effective_reuse_factor(SMALL.size_bytes // 4, passes=4,
                                       config=SMALL)
        above = effective_reuse_factor(SMALL.size_bytes * 4, passes=4,
                                       config=SMALL)
        assert below < 1.5
        assert above > 3.5

    def test_stream_addresses(self):
        a = stream_pass_addresses(1024, stride=128)
        assert a[0] == 0 and a[-1] == 896 and len(a) == 8
