"""Tests for the GW analysis stack: SWSH, quadrature, extraction,
model waveforms, detector curves."""

import numpy as np
import pytest

from repro.gw import (
    ExtractionSphere,
    IMRWaveform,
    aplus_asd,
    ce_asd,
    colored_noise,
    gauss_legendre_rule,
    lebedev_rule,
    peters_merger_time,
    physical_strain,
    qnm_frequency,
    remnant_spin,
    resolution_requirements,
    snr_estimate,
    spin_weighted_ylm,
    symmetric_mass_ratio,
    wigner_d,
    ylm,
)


class TestSWSH:
    def test_y00(self):
        th, ph = np.array([0.3, 1.2]), np.array([0.1, 2.2])
        assert np.allclose(ylm(0, 0, th, ph), 1.0 / np.sqrt(4 * np.pi))

    def test_spin0_matches_scipy(self):
        from scipy.special import sph_harm_y

        rng = np.random.default_rng(0)
        th = rng.uniform(0.05, np.pi - 0.05, 10)
        ph = rng.uniform(0, 2 * np.pi, 10)
        for l in range(0, 4):
            for m in range(-l, l + 1):
                ours = ylm(l, m, th, ph)
                ref = sph_harm_y(l, m, th, ph)
                assert np.allclose(ours, ref, atol=1e-10), (l, m)

    def test_sm2_y22_closed_form(self):
        """_-2 Y_22 = sqrt(5/64π)(1 + cosθ)² e^{2iφ}."""
        th = np.linspace(0.01, np.pi - 0.01, 17)
        ph = np.linspace(0, 2 * np.pi, 17)
        ours = spin_weighted_ylm(-2, 2, 2, th, ph)
        ref = np.sqrt(5.0 / (64 * np.pi)) * (1 + np.cos(th)) ** 2 * np.exp(2j * ph)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_orthonormality(self):
        rule = gauss_legendre_rule(16)
        th, ph = rule.theta, rule.phi
        for s in (0, -2):
            y22 = spin_weighted_ylm(s, 2, 2, th, ph)
            y21 = spin_weighted_ylm(s, 2, 1, th, ph)
            y33 = spin_weighted_ylm(s, 3, 3, th, ph)
            assert np.isclose(rule.integrate(y22 * np.conj(y22)).real, 1.0, atol=1e-8)
            assert abs(rule.integrate(y22 * np.conj(y21))) < 1e-10
            assert abs(rule.integrate(y22 * np.conj(y33))) < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            spin_weighted_ylm(-2, 1, 0, 0.3, 0.0)
        with pytest.raises(ValueError):
            spin_weighted_ylm(0, 2, 5, 0.3, 0.0)
        with pytest.raises(ValueError):
            wigner_d(2, 3, 0, 0.1)

    def test_wigner_d_identity_at_zero(self):
        for l in (1, 2, 3):
            for m in range(-l, l + 1):
                for mp in range(-l, l + 1):
                    v = wigner_d(l, m, mp, np.array([0.0]))[0]
                    assert np.isclose(v, 1.0 if m == mp else 0.0, atol=1e-12)


class TestQuadrature:
    @pytest.mark.parametrize("order,npts", [(3, 6), (7, 26), (11, 50)])
    def test_lebedev_counts_and_weight_sum(self, order, npts):
        rule = lebedev_rule(order)
        assert len(rule) == npts
        assert np.isclose(rule.weights.sum(), 4 * np.pi)
        assert np.allclose(np.linalg.norm(rule.points, axis=1), 1.0)

    @pytest.mark.parametrize("order", [3, 7, 11])
    def test_lebedev_exactness(self, order):
        """Exact for spherical harmonics up to the rule's degree:
        ∮ Y_lm dΩ = 0 for l >= 1 and = √(4π) δ_l0."""
        rule = lebedev_rule(order)
        th, ph = rule.theta, rule.phi
        for l in range(1, order + 1):
            for m in range(-l, l + 1):
                v = rule.integrate(ylm(l, m, th, ph))
                assert abs(v) < 1e-10, (order, l, m)

    def test_lebedev_invalid_order(self):
        with pytest.raises(ValueError):
            lebedev_rule(5)

    def test_gauss_legendre_exactness(self):
        rule = gauss_legendre_rule(10)
        th, ph = rule.theta, rule.phi
        for l in range(1, 8):
            assert abs(rule.integrate(ylm(l, 0, th, ph))) < 1e-10
        assert np.isclose(rule.integrate(0 * th + 1.0).real, 4 * np.pi)


class TestExtractionSphere:
    def test_recovers_injected_mode(self):
        sph = ExtractionSphere(60.0, gauss_legendre_rule(12))
        th, ph = sph.rule.theta, sph.rule.phi
        coeff = 0.7 - 0.3j
        f = coeff * spin_weighted_ylm(-2, 2, 2, th, ph)
        got = sph.mode(f, 2, 2, s=-2)
        assert np.isclose(got, coeff, atol=1e-10)
        # orthogonal mode is empty
        assert abs(sph.mode(f, 2, 1, s=-2)) < 1e-10

    def test_modes_dict(self):
        sph = ExtractionSphere(50.0)
        f = np.ones(len(sph.rule), dtype=complex)
        modes = sph.modes(f, l_max=2, s=0)
        assert set(modes) == {(l, m) for l in range(3) for m in range(-l, l + 1)}
        assert np.isclose(modes[(0, 0)], np.sqrt(4 * np.pi), atol=1e-10)

    def test_points_radius(self):
        sph = ExtractionSphere(75.0)
        assert np.allclose(np.linalg.norm(sph.points, axis=1), 75.0)


class TestWaveformModel:
    def test_symmetric_mass_ratio(self):
        assert symmetric_mass_ratio(1.0) == pytest.approx(0.25)
        assert symmetric_mass_ratio(4.0) == pytest.approx(4.0 / 25.0)

    def test_peters_matches_paper_scale(self):
        """Paper Table I merger times for large q come from PN decay:
        q=64 at d=8 is ~6000 M."""
        assert 4000 < peters_merger_time(64.0, 8.0) < 8000
        assert 15000 < peters_merger_time(256.0, 8.0) < 30000

    def test_remnant_spin_range(self):
        assert 0.6 < remnant_spin(1.0) < 0.75  # ~0.686 for equal mass
        assert remnant_spin(10.0) < remnant_spin(1.0)

    def test_qnm_frequency(self):
        w = qnm_frequency(1.0)
        assert 0.3 < w.real < 0.7  # M ω ≈ 0.55 for a_f ~ 0.69
        assert w.imag < 0.0  # damped

    def test_chirp_frequency_increases(self):
        wf = IMRWaveform(mass_ratio=1.0, t_merge=200.0)
        t = np.linspace(0.0, 199.0, 500)
        w = wf.frequency(t)
        assert np.all(np.diff(w) >= -1e-12)

    def test_waveform_chirps_then_rings_down(self):
        wf = IMRWaveform(mass_ratio=1.0, t_merge=150.0)
        t = np.linspace(0.0, 250.0, 4000)
        h = wf.h(t)
        amp = np.abs(h)
        i_peak = np.argmax(amp)
        assert 100.0 < t[i_peak] < 170.0  # peak near merger
        # ringdown decays
        assert amp[-1] < 0.05 * amp[i_peak]
        # inspiral amplitude grows
        assert amp[i_peak] > 2.0 * amp[100]

    def test_psi4_shape(self):
        wf = IMRWaveform(mass_ratio=2.0, t_merge=100.0)
        t = np.linspace(0.0, 150.0, 2000)
        p4 = wf.psi4(t)
        assert p4.shape == t.shape
        assert np.all(np.isfinite(p4))


class TestTable1:
    def test_resolutions_match_paper(self):
        from repro.analysis import PAPER_TABLE1, table1_row

        for q, row in PAPER_TABLE1.items():
            ours = table1_row(float(q))
            assert np.isclose(ours.dx_small, row["dx_bh1"], rtol=0.02), q
            assert np.isclose(ours.dx_large, row["dx_bh2"], rtol=0.02), q

    def test_timesteps_match_paper(self):
        from repro.analysis import PAPER_TABLE1, table1_row

        for q, row in PAPER_TABLE1.items():
            ours = table1_row(float(q))
            assert np.isclose(ours.timesteps, row["timesteps"], rtol=0.25), q


class TestDetector:
    def test_asd_minima_in_band(self):
        f = np.geomspace(5.0, 4000.0, 400)
        ap = aplus_asd(f)
        ce = ce_asd(f)
        # CE more sensitive than A+ through the bucket
        band = (f > 20) & (f < 500)
        assert np.all(ce[band] < ap[band])
        assert 5e-25 < ap[band].min() < 5e-24
        assert 1e-25 < ce[band].min() < 2e-24

    def test_colored_noise_psd(self):
        """Generated noise has roughly the requested spectral density."""
        dt = 1.0 / 4096
        n = 1 << 16
        x = colored_noise(n, dt, aplus_asd, np.random.default_rng(1))
        f = np.fft.rfftfreq(n, dt)
        psd = np.abs(np.fft.rfft(x)) ** 2 * 2 * dt / n
        band = (f > 100) & (f < 300)
        ratio = np.sqrt(psd[band].mean()) / aplus_asd(f[band]).mean()
        assert 0.5 < ratio < 2.0

    def test_physical_strain_scaling(self):
        t = np.linspace(0, 100, 100)
        h = np.ones_like(t) + 0j
        ts, strain = physical_strain(h, t, total_mass_msun=65.0,
                                     distance_mpc=410.0)
        assert ts[-1] == pytest.approx(100 * 65 * 4.925490947e-6)
        assert 1e-21 < strain[0] < 1e-19

    def test_snr_louder_when_closer(self):
        wf = IMRWaveform(mass_ratio=1.0, t_merge=150.0, amplitude=1.0)
        tg = np.linspace(0, 200, 4096)
        h = wf.h(tg)
        t1, s1 = physical_strain(h, tg, distance_mpc=400.0)
        t2, s2 = physical_strain(h, tg, distance_mpc=100.0)
        dt = t1[1] - t1[0]
        assert snr_estimate(s2, dt, ce_asd) > 3.0 * snr_estimate(s1, dt, ce_asd)
