"""Tests for waveform comparison utilities."""

import numpy as np
import pytest

from repro.gw import IMRWaveform, align, inner, l2_difference, mismatch, overlap


@pytest.fixture()
def chirp():
    wf = IMRWaveform(mass_ratio=1.0, t_merge=80.0)
    t = np.linspace(0.0, 120.0, 2048)
    return t, wf.h(t)


class TestOverlap:
    def test_self_overlap_is_one(self, chirp):
        t, h = chirp
        dt = t[1] - t[0]
        assert overlap(h, h, dt) == pytest.approx(1.0, abs=1e-9)
        assert mismatch(h, h, dt) == pytest.approx(0.0, abs=1e-9)

    def test_phase_shift_invariance(self, chirp):
        """Time/phase-maximised overlap ignores a constant phase."""
        t, h = chirp
        dt = t[1] - t[0]
        assert overlap(h, h * np.exp(0.7j), dt) == pytest.approx(1.0, abs=1e-9)

    def test_time_shift_mostly_recovered(self, chirp):
        t, h = chirp
        dt = t[1] - t[0]
        shifted = np.roll(h, 37)
        assert overlap(h, shifted, dt) > 0.99
        # without maximisation the overlap drops
        plain = overlap(h, shifted, dt, maximize=False)
        assert plain < overlap(h, shifted, dt) - 1e-3

    def test_different_waveforms_mismatch(self):
        t = np.linspace(0.0, 120.0, 2048)
        h1 = IMRWaveform(mass_ratio=1.0, t_merge=80.0).h(t)
        h2 = IMRWaveform(mass_ratio=8.0, t_merge=50.0).h(t)
        dt = t[1] - t[0]
        assert mismatch(h1, h2, dt) > 0.01

    def test_zero_waveform_rejected(self, chirp):
        t, h = chirp
        with pytest.raises(ValueError):
            overlap(h, np.zeros_like(h), t[1] - t[0])

    def test_shape_mismatch_rejected(self, chirp):
        t, h = chirp
        with pytest.raises(ValueError):
            inner(h, h[:-5], t[1] - t[0])


class TestAlign:
    def test_recovers_known_shift(self, chirp):
        t, h = chirp
        dt = t[1] - t[0]
        lag = 25
        shifted = np.roll(h, lag)
        recovered, shift = align(t, h, shifted)
        assert shift == pytest.approx(lag * dt, abs=2 * dt)

    def test_real_waveforms(self, chirp):
        t, h = chirp
        aligned, shift = align(t, np.real(h), np.real(np.roll(h, 10)))
        assert aligned.shape == t.shape
        assert not np.iscomplexobj(aligned)


class TestL2Difference:
    def test_zero_for_identical(self, chirp):
        _, h = chirp
        assert l2_difference(h, h) == 0.0

    def test_scales_with_perturbation(self, chirp):
        _, h = chirp
        d1 = l2_difference(h, h * 1.01)
        d2 = l2_difference(h, h * 1.02)
        assert d1 == pytest.approx(0.01, rel=1e-6)
        assert d2 > d1

    def test_zero_reference_rejected(self, chirp):
        _, h = chirp
        with pytest.raises(ValueError):
            l2_difference(np.zeros_like(h), h)
