"""Tests for detector post-processing (PSDs, bandpass, SNR)."""

import numpy as np
import pytest

from repro.gw.detector import (
    aplus_asd,
    bandpass,
    ce_asd,
    physical_strain,
    snr_estimate,
)


class TestPSDModels:
    @pytest.mark.parametrize("asd", [aplus_asd, ce_asd],
                             ids=["aplus", "ce"])
    def test_finite_positive_over_band(self, asd):
        f = np.linspace(5.0, 4096.0, 2000)
        s = asd(f)
        assert np.all(np.isfinite(s))
        assert np.all(s > 0.0)

    def test_ce_deeper_than_aplus_in_band(self):
        f = np.linspace(30.0, 500.0, 200)
        assert np.all(ce_asd(f) < aplus_asd(f))

    def test_aplus_minimum_near_published_shape(self):
        f = np.linspace(20.0, 2000.0, 5000)
        s = aplus_asd(f)
        f_min = f[np.argmin(s)]
        assert 100.0 < f_min < 500.0
        assert 5e-25 < s.min() < 5e-24


class TestBandpass:
    def test_f_hi_at_nyquist_is_identity_above_f_lo(self):
        """f_hi >= Nyquist must not clip anything at the top edge."""
        rng = np.random.default_rng(3)
        n, dt = 256, 1.0 / 1024.0
        x = rng.normal(size=n)
        nyquist = 0.5 / dt
        out = bandpass(x, dt, 0.0, nyquist)
        assert np.allclose(out, x)
        # beyond Nyquist behaves identically (mask selects nothing)
        assert np.allclose(bandpass(x, dt, 0.0, 10.0 * nyquist), x)

    def test_kills_out_of_band_tone(self):
        n, dt = 1024, 1.0 / 1024.0
        t = np.arange(n) * dt
        lo_tone = np.sin(2 * np.pi * 16.0 * t)
        hi_tone = np.sin(2 * np.pi * 300.0 * t)
        out = bandpass(lo_tone + hi_tone, dt, 100.0, 400.0)
        assert np.abs(out - hi_tone).max() < 1e-10

    def test_preserves_length(self):
        x = np.ones(501)
        assert bandpass(x, 0.01, 1.0, 10.0).shape == x.shape


class TestSNR:
    def test_sinusoid_closed_form(self):
        """For h = A sin(2π f0 t) over duration T against a flat ASD
        √S0, the matched filter gives ρ = A √(T / S0)."""
        n, dt = 4096, 1.0 / 512.0
        T = n * dt
        k = 64  # bin-centred tone: f0 = k / T
        f0 = k / T
        A, S0 = 3.0, 2.5
        t = np.arange(n) * dt
        h = A * np.sin(2 * np.pi * f0 * t)
        rho = snr_estimate(h, dt, lambda f: np.sqrt(S0) * np.ones_like(f))
        assert rho == pytest.approx(A * np.sqrt(T / S0), rel=1e-6)

    def test_scales_linearly_with_amplitude(self):
        n, dt = 2048, 1.0 / 256.0
        t = np.arange(n) * dt
        h = np.sin(2 * np.pi * 32.0 * t) * np.exp(-(((t - 4.0) / 1.0) ** 2))
        r1 = snr_estimate(h, dt, ce_asd)
        r2 = snr_estimate(2.0 * h, dt, ce_asd)
        assert r2 == pytest.approx(2.0 * r1, rel=1e-9)
        assert np.isfinite(r1) and r1 > 0.0


class TestPhysicalStrain:
    def test_scaling(self):
        t = np.linspace(0.0, 100.0, 64)
        h = np.exp(1j * t) * 0.3
        t1, s1 = physical_strain(h, t, total_mass_msun=65.0,
                                 distance_mpc=410.0)
        t2, s2 = physical_strain(h, t, total_mass_msun=130.0,
                                 distance_mpc=410.0)
        _, s3 = physical_strain(h, t, total_mass_msun=65.0,
                                distance_mpc=820.0)
        # time and strain both scale linearly with total mass
        assert np.allclose(t2, 2.0 * t1)
        assert np.allclose(s2, 2.0 * s1)
        # strain falls off as 1/distance
        assert np.allclose(s3, 0.5 * s1)
        # GW150914-like numbers land near 1e-21
        assert 1e-23 < np.abs(s1).max() < 1e-19
