"""Tests for Hilbert-curve ordering and curve-based partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    LinearOctree,
    bbh_grid,
    build_adjacency,
    hilbert_key,
    hilbert_order,
    partition_octree,
    partition_octree_hilbert,
)
from repro.octree import Partition


class TestHilbertKey:
    def test_bijection_small_cube(self):
        b = 3
        n = 1 << b
        zz, yy, xx = np.meshgrid(range(n), range(n), range(n), indexing="ij")
        k = hilbert_key(
            xx.ravel().astype(np.uint64),
            yy.ravel().astype(np.uint64),
            zz.ravel().astype(np.uint64),
            bits=b,
        )
        assert len(np.unique(k)) == n**3
        assert int(k.max()) == n**3 - 1

    def test_unit_step_continuity(self):
        """The defining Hilbert property: consecutive indices are
        face-adjacent lattice points."""
        b = 3
        n = 1 << b
        zz, yy, xx = np.meshgrid(range(n), range(n), range(n), indexing="ij")
        pts = np.stack([xx.ravel(), yy.ravel(), zz.ravel()], axis=1)
        k = hilbert_key(*(pts[:, i].astype(np.uint64) for i in range(3)), bits=b)
        order = np.argsort(k)
        d = np.abs(np.diff(pts[order].astype(int), axis=0)).sum(axis=1)
        assert d.max() == 1

    def test_origin_is_zero(self):
        z = np.zeros(1, dtype=np.uint64)
        assert hilbert_key(z, z, z, bits=4)[0] == 0

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_locality_beats_morton_on_random_windows(self, seed):
        """Average index jump between adjacent lattice points is finite."""
        rng = np.random.default_rng(seed)
        b = 4
        p = rng.integers(0, (1 << b) - 1, size=3).astype(np.uint64)
        q = p.copy()
        q[0] += 1  # face neighbour
        k1 = hilbert_key(*(np.array([v]) for v in p), bits=b)[0]
        k2 = hilbert_key(*(np.array([v]) for v in q), bits=b)[0]
        assert k1 != k2


class TestHilbertPartition:
    @pytest.fixture(scope="class")
    def grid(self):
        return bbh_grid(mass_ratio=2.0, max_level=7, base_level=3)

    def test_covers_and_balances(self, grid):
        p = partition_octree_hilbert(grid, 6)
        sizes = p.part_sizes()
        assert sizes.sum() == len(grid)
        assert sizes.max() - sizes.min() <= 1
        # every leaf owned exactly once
        assert np.array_equal(np.sort(np.unique(p.owner)), np.arange(6))

    def test_local_indices_consistent_with_owner(self, grid):
        p = partition_octree_hilbert(grid, 4)
        for r in range(4):
            idx = p.local_indices(r)
            assert np.all(p.owner[idx] == r)

    def test_ghosts_cross_rank(self, grid):
        adj = build_adjacency(grid)
        p = partition_octree_hilbert(grid, 4)
        for r in range(4):
            g = p.ghost_indices(r, adj)
            assert np.all(p.owner[g] != r)

    def test_surface_not_worse_than_morton_on_average(self, grid):
        """Hilbert cuts have no long jumps: total partition surface is at
        most ~equal to Morton's across rank counts (usually smaller)."""
        adj = build_adjacency(grid)
        ratios = []
        for parts in (3, 4, 5, 6, 8):
            sm = partition_octree(grid, parts).boundary_surface(adj).sum()
            sh = partition_octree_hilbert(grid, parts).boundary_surface(adj).sum()
            ratios.append(sh / sm)
        assert np.mean(ratios) <= 1.05

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            partition_octree_hilbert(grid, 0)
        with pytest.raises(ValueError):
            Partition.from_owner(grid, np.zeros(3, dtype=np.int32))

    def test_from_owner_roundtrip(self):
        t = LinearOctree.uniform(2)
        owner = np.arange(len(t)) % 3
        p = Partition.from_owner(t, owner, 3)
        assert p.num_parts == 3
        assert p.part_sizes().sum() == len(t)
