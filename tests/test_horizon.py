"""Apparent-horizon finder tests against Brill–Lindquist analytics."""

import numpy as np
import pytest

from repro.bssn import (
    Puncture,
    find_apparent_horizon,
    flat_metric_state,
    mesh_puncture_state,
    schwarzschild_horizon_radius,
)
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree, balance, puncture_refine_fn


def _puncture_mesh(mass=1.0, max_level=5, half=8.0):
    fn = puncture_refine_fn([(np.zeros(3), mass)], theta=0.5)
    tree = balance(
        LinearOctree.from_refinement(
            fn, domain=Domain(-half, half), base_level=2, max_level=max_level
        )
    )
    return Mesh(tree)


class TestSchwarzschild:
    @pytest.fixture(scope="class")
    def horizon(self):
        mesh = _puncture_mesh()
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
        return find_apparent_horizon(mesh, u)

    def test_radius_is_m_over_2(self, horizon):
        assert horizon.found
        assert horizon.radius == pytest.approx(
            schwarzschild_horizon_radius(1.0), rel=1e-3
        )

    def test_areal_mass_is_m(self, horizon):
        assert horizon.areal_mass == pytest.approx(1.0, rel=1e-3)

    def test_mass_scaling(self):
        """r_AH and M_AH scale linearly with the puncture mass."""
        mesh = _puncture_mesh(mass=2.0)
        u = mesh_puncture_state(mesh, [Puncture(2.0, [0.0, 0.0, 0.0])])
        h = find_apparent_horizon(mesh, u, r_max=6.0)
        assert h.radius == pytest.approx(1.0, rel=1e-3)
        assert h.areal_mass == pytest.approx(2.0, rel=1e-3)


class TestNoHorizon:
    def test_flat_space(self):
        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
        u = flat_metric_state((mesh.num_octants, 7, 7, 7))
        h = find_apparent_horizon(mesh, u)
        assert not h.found
        assert np.isnan(h.radius)


class TestBinary:
    def test_close_binary_has_common_horizon(self):
        """Brill–Lindquist: a common AH exists for separations below
        ~1.53 M (Brill & Lindquist 1963)."""
        d = 0.6
        pts = [Puncture(0.5, [-d / 2, 0, 0]), Puncture(0.5, [d / 2, 0, 0])]
        fn = puncture_refine_fn([(p.position, p.mass) for p in pts], theta=0.5)
        tree = balance(
            LinearOctree.from_refinement(
                fn, domain=Domain(-8.0, 8.0), base_level=2, max_level=5
            )
        )
        mesh = Mesh(tree)
        u = mesh_puncture_state(mesh, pts)
        h = find_apparent_horizon(mesh, u, r_min=0.35, r_max=3.0)
        assert h.found
        # the common horizon mass exceeds the sum of the bare masses'
        # share visible at this separation (binding energy is small)
        assert 0.9 < h.areal_mass < 1.2

    def test_wide_binary_no_common_horizon(self):
        d = 6.0
        pts = [Puncture(0.5, [-d / 2, 0, 0]), Puncture(0.5, [d / 2, 0, 0])]
        fn = puncture_refine_fn([(p.position, p.mass) for p in pts], theta=0.5)
        tree = balance(
            LinearOctree.from_refinement(
                fn, domain=Domain(-16.0, 16.0), base_level=2, max_level=5
            )
        )
        mesh = Mesh(tree)
        u = mesh_puncture_state(mesh, pts)
        # scan radii that would enclose both punctures: no marginal
        # surface out there for a wide separation
        h = find_apparent_horizon(mesh, u, r_min=4.0, r_max=10.0)
        assert not h.found
