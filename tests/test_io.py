"""Tests for checkpointing, parameter files, and CLI drivers."""

import json

import numpy as np
import pytest

from repro.io import RunConfig, load_checkpoint, preset, restore_solver, save_checkpoint
from repro.io.cli import bssn_main, tpid_main


@pytest.fixture()
def small_config():
    return RunConfig(
        name="test",
        mass_ratio=1.0,
        domain_half_width=12.0,
        base_level=2,
        max_level=3,
        t_end=0.1,
        extraction_radii=[8.0],
    )


class TestRunConfig:
    def test_round_trip_json(self, small_config, tmp_path):
        p = tmp_path / "run.par.json"
        small_config.save(p)
        loaded = RunConfig.load(p)
        assert loaded == small_config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            RunConfig.from_json(json.dumps({"massratio": 2}))

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(mass_ratio=0.5).validate()
        with pytest.raises(ValueError):
            RunConfig(base_level=5, max_level=3).validate()
        with pytest.raises(ValueError):
            RunConfig(courant=0.0).validate()
        with pytest.raises(ValueError):
            RunConfig(domain_half_width=10.0,
                      extraction_radii=[20.0]).validate()

    def test_presets(self):
        for name in ("q1", "q2", "q4"):
            cfg = preset(name)
            cfg.validate()
            assert cfg.name == name
        with pytest.raises(ValueError):
            preset("q512")

    def test_preset_is_a_copy(self):
        a = preset("q1")
        a.max_level = 99
        assert preset("q1").max_level != 99

    def test_builders(self, small_config):
        solver = small_config.build_solver()
        assert solver.state is not None
        assert solver.mesh.num_octants >= 64
        assert solver.params.eta == small_config.eta


class TestCheckpoint:
    def test_round_trip(self, small_config, tmp_path):
        solver = small_config.build_solver()
        solver.step()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)

        mesh, state, meta = load_checkpoint(p)
        assert mesh.num_octants == solver.mesh.num_octants
        assert np.array_equal(state, solver.state)
        assert meta["t"] == pytest.approx(solver.t)

    def test_restore_and_continue(self, small_config, tmp_path):
        solver = small_config.build_solver()
        solver.step()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)

        restored = restore_solver(p, small_config.bssn_params())
        assert restored.t == pytest.approx(solver.t)
        assert restored.step_count == solver.step_count
        # both evolve identically from the checkpoint
        solver.step()
        restored.step()
        assert np.allclose(restored.state, solver.state, atol=1e-14)

    def test_no_state_raises(self, small_config, tmp_path):
        from repro.solver import BSSNSolver

        solver = BSSNSolver(small_config.build_mesh())
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz", solver)


class TestCLI:
    def test_tpid(self, small_config, tmp_path, capsys):
        p = tmp_path / "run.par.json"
        small_config.save(p)
        assert tpid_main([str(p)]) == 0
        out = capsys.readouterr().out
        assert "ham_l2" in out

    def test_bssn_run_and_checkpoint(self, small_config, tmp_path, capsys):
        p = tmp_path / "run.par.json"
        small_config.save(p)
        chk = tmp_path / "out.npz"
        assert bssn_main([str(p), "--steps", "1", "--checkpoint", str(chk)]) == 0
        assert chk.exists()
        # restart path
        assert bssn_main([str(p), "--steps", "1", "--restart", str(chk)]) == 0
        out = capsys.readouterr().out
        assert "restarted" in out


class TestWaveformIO:
    def test_round_trip(self, tmp_path):
        import numpy as np

        from repro.gw.extraction import ModeTimeSeries
        from repro.io import load_modes, save_modes

        series = ModeTimeSeries()
        t = np.linspace(0, 5, 20)
        for i, ti in enumerate(t):
            series.append(ti, {(2, 2): np.exp(-1j * ti), (2, 0): 0.1 * ti})
        p = tmp_path / "modes.npz"
        save_modes(p, series, radius=50.0, metadata={"q": 1.0})
        loaded, radius, meta = load_modes(p)
        assert radius == 50.0
        assert meta["q"] == 1.0
        t2, c22 = loaded.series(2, 2)
        t1, c22_orig = series.series(2, 2)
        assert np.allclose(t1, t2)
        assert np.allclose(c22, c22_orig)

    def test_save_extractor(self, tmp_path):
        import numpy as np

        from repro.gw import WaveExtractor, gauss_legendre_rule
        from repro.io import load_modes, save_extractor
        from repro.mesh import Mesh
        from repro.octree import Domain, LinearOctree

        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-12.0, 12.0)))
        c = mesh.coordinates()
        u = c[..., 0] * 0.01
        ex = WaveExtractor([6.0, 9.0], l_max=2, s=0,
                           rule=gauss_legendre_rule(6))
        ex.sample(mesh, u, 0.0)
        ex.sample(mesh, u, 0.5)
        paths = save_extractor(tmp_path / "catalog", ex)
        assert len(paths) == 2
        series, radius, _ = load_modes(paths[0])
        assert len(series.times) == 2
