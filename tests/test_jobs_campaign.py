"""End-to-end campaign tests: submit → workers → cache/fault handling →
report, on deliberately tiny wave configurations."""

import json

import pytest

from repro.io import RunConfig
from repro.jobs import (
    Campaign,
    QueueSaturated,
    WorkerPool,
    campaign_report,
    render_report,
    worker_loop,
    write_report,
)


def wave_cfg(name, **kw):
    base = dict(name=name, solver="wave", domain_half_width=8.0,
                base_level=1, max_level=2, t_end=1.0, courant=0.25,
                ko_sigma=0.05, regrid_every=4, regrid_eps=3e-5,
                extraction_radii=[4.0])
    base.update(kw)
    return RunConfig(**base)


class TestSubmit:
    def test_submit_prices_and_enqueues(self, tmp_path):
        campaign = Campaign(tmp_path)
        rec = campaign.submit(wave_cfg("a"), priority=2)
        assert rec["state"] == "pending"
        assert rec["priority"] == 2
        assert rec["cost"]["total_seconds"] > 0.0
        assert rec["cache_key"] == wave_cfg("a").cache_key()

    def test_submit_validates(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign(tmp_path).submit(wave_cfg("bad", t_end=-1.0))

    def test_backpressure(self, tmp_path):
        campaign = Campaign(tmp_path, max_pending=1)
        campaign.submit(wave_cfg("a"))
        with pytest.raises(QueueSaturated):
            campaign.submit(wave_cfg("b", t_end=0.5))

    def test_sweep(self, tmp_path):
        campaign = Campaign(tmp_path)
        records = campaign.submit_sweep(wave_cfg("conv"), "regrid_eps",
                                        [1e-4, 3e-5])
        assert len(records) == 2
        names = [r["config"]["name"] for r in records]
        assert names == ["conv-regrid_eps-0.0001", "conv-regrid_eps-3e-05"]
        eps = {r["config"]["regrid_eps"] for r in records}
        assert eps == {1e-4, 3e-5}
        # distinct physics → distinct cache keys
        assert len({r["cache_key"] for r in records}) == 2

    def test_sweep_unknown_field(self, tmp_path):
        with pytest.raises(ValueError):
            Campaign(tmp_path).submit_sweep(wave_cfg("x"), "no_such", [1])

    def test_status(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.submit(wave_cfg("a"))
        status = campaign.status()
        assert status["counts"]["pending"] == 1
        assert status["predicted_makespan_seconds"] > 0.0
        (job,) = status["jobs"].values()
        assert job["state"] == "pending"
        assert job["predicted_seconds"] > 0.0


class TestEndToEnd:
    def test_single_worker_campaign(self, tmp_path):
        """One in-process worker drains a campaign holding a duplicate
        spec (cache hit) and a fault-injected job (rollback recovery)."""
        campaign = Campaign(tmp_path)
        campaign.submit(wave_cfg("base"))
        campaign.submit(wave_cfg("faulty", t_end=1.5), fault_steps=(2,))
        # identical physics to "base", lowest priority → claimed after
        # its twin finished → served from the result cache
        dup = campaign.submit(wave_cfg("base-dup"), priority=-1)

        stats = worker_loop(tmp_path, "w0")
        assert stats["claimed"] == 3
        assert stats["done"] == 3
        assert stats["failed"] == 0
        assert stats["cache_hits"] == 1

        jobs = campaign.queue.jobs()
        assert all(r["state"] == "done" for r in jobs.values())

        dup_res = jobs[dup["id"]]["result"]
        assert dup_res["cached"] is True
        assert dup_res["steps_executed"] == 0

        fault_res = next(r for r in jobs.values()
                         if r["config"]["name"] == "faulty")["result"]
        assert fault_res["rollbacks"] >= 1
        assert fault_res["cached"] is False

        # non-cached twins computed identical physics
        base_res = next(r for r in jobs.values()
                        if r["config"]["name"] == "base")["result"]
        assert dup_res["state_sha256"] == base_res["state_sha256"]

    def test_report_fields(self, tmp_path):
        campaign = Campaign(tmp_path)
        campaign.submit(wave_cfg("a"))
        campaign.submit(wave_cfg("b", t_end=1.5))
        worker_loop(tmp_path, "w0")

        report = campaign_report(tmp_path)
        assert report["counts"]["done"] == 2
        assert report["queue"]["span_seconds"] > 0.0
        assert report["queue"]["throughput_jobs_per_hour"] > 0.0
        assert report["queue"]["mean_latency_seconds"] >= 0.0
        assert report["cost_model"]["total_predicted_seconds"] > 0.0
        assert report["cost_model"]["total_actual_wall_seconds"] > 0.0
        for job in report["jobs"]:
            assert job["state"] == "done"
            assert job["predicted_seconds"] > 0.0
            assert job["actual_wall_seconds"] > 0.0
            assert job["actual_over_predicted"] > 0.0
            assert job["queue_latency_seconds"] >= 0.0
            assert job["journal_events"].get("complete") == 1

        text = render_report(report)
        assert "cost model" in text
        for job in report["jobs"]:
            assert job["id"][:28] in text

        path = write_report(tmp_path, report)
        assert json.loads(path.read_text())["counts"]["done"] == 2

    def test_worker_pool_multiprocess(self, tmp_path):
        """Two spawned worker processes drain the queue cooperatively."""
        campaign = Campaign(tmp_path)
        for i in range(3):
            campaign.submit(wave_cfg(f"mp-{i}", t_end=0.5 + 0.25 * i))

        with WorkerPool(tmp_path, 2) as pool:
            assert pool.join(240.0)
        assert campaign.queue.drained()
        jobs = campaign.queue.jobs()
        assert len(jobs) == 3
        assert all(r["state"] == "done" for r in jobs.values())
        workers = {r["worker"] for r in jobs.values()}
        assert workers  # claimed by the pool's workers
