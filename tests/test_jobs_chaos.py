"""Tests for the network chaos harness and the chaos-matrix checks.

:class:`repro.resilience.ChaosProxy` must inject faults deterministically
(seeded, like ``FaultyComm``), and the fabric must keep its exactly-once
guarantee underneath each of them.  The full four-scenario matrix runs in
the ``fabric-chaos`` CI job; here we pin the proxy semantics and run one
end-to-end scenario (partition → degraded mode → heal) in quick mode.
"""

import time

import pytest

from repro.jobs import JobQueue
from repro.jobs.fabric import Coordinator, FabricClient, FabricQueue
from repro.jobs.fabric.chaos import (
    _digest_match,
    exactly_once,
    run_matrix,
)
from repro.resilience import ChaosProxy


def submit_n(queue, n, **kwargs):
    return [
        queue.submit({"name": f"job{i}"}, cache_key=f"key{i}", **kwargs)
        for i in range(n)
    ]


@pytest.fixture
def coord(tmp_path):
    c = Coordinator(tmp_path, lease_seconds=30.0, reap_interval=60.0)
    with c:
        yield c


def drain_via(address, root, n_jobs):
    """Claim/complete every job through ``address``; returns fault-free
    completion count."""
    fq = FabricQueue(address, name="w0", rpc_timeout=0.5, deadline=15.0)
    done = 0
    while done < n_jobs:
        rec = fq.claim()
        if rec is None:
            time.sleep(0.01)
            continue
        fq.complete(rec["id"], {"n": done}, attempt=rec["attempts"])
        done += 1
    return done


class TestChaosProxy:
    def test_passthrough(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 3)
        proxy = ChaosProxy(coord.address, seed=1).start()
        try:
            assert drain_via(proxy.address, tmp_path, 3) == 3
            assert proxy.log == []  # zero probabilities: no faults
        finally:
            proxy.stop()
        assert exactly_once(tmp_path)["ok"]

    def test_duplicates_collapsed_by_tokens(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 4)
        proxy = ChaosProxy(coord.address, seed=2, dup_prob=0.5).start()
        try:
            drain_via(proxy.address, tmp_path, 4)
        finally:
            proxy.stop()
        dups = [e for e in proxy.log if e["fault"] == "duplicate"]
        assert dups  # the storm actually happened
        audit = exactly_once(tmp_path)
        assert audit["ok"], audit["problems"]

    def test_drops_retried_exactly_once(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 3)
        proxy = ChaosProxy(coord.address, seed=3, drop_prob=0.25).start()
        try:
            drain_via(proxy.address, tmp_path, 3)
        finally:
            proxy.stop()
        audit = exactly_once(tmp_path)
        assert audit["ok"], audit["problems"]

    def test_fault_schedule_deterministic(self, tmp_path, coord):
        # identical seed + identical traffic → identical fault schedule
        logs = []
        for round_ in range(2):
            root = tmp_path / f"r{round_}"
            c = Coordinator(root, lease_seconds=30.0, reap_interval=60.0)
            with c:
                submit_n(JobQueue(root), 3)
                proxy = ChaosProxy(c.address, seed=99, dup_prob=0.3,
                                   delay_prob=0.2,
                                   delay_seconds=0.001).start()
                try:
                    drain_via(proxy.address, root, 3)
                finally:
                    proxy.stop()
            logs.append([(e["fault"], e["dir"], e["conn"], e["msg"])
                         for e in proxy.log])
        assert logs[0] == logs[1]

    def test_partition_refuses_and_heals(self, tmp_path, coord):
        proxy = ChaosProxy(coord.address, seed=4).start()
        try:
            client = FabricClient(proxy.address, rpc_timeout=0.3,
                                  deadline=0.6)
            assert client.call("hello")["epoch"] == coord.epoch
            proxy.partition(None)  # until heal()
            from repro.jobs.fabric import CoordinatorUnreachable

            client.close()
            with pytest.raises(CoordinatorUnreachable):
                client.call("hello")
            proxy.heal()
            assert client.call("hello",
                               deadline=10.0)["epoch"] == coord.epoch
        finally:
            proxy.stop()


class TestMatrixChecks:
    def test_exactly_once_flags_duplicates_and_stragglers(self, tmp_path):
        q = JobQueue(tmp_path)
        a, b = submit_n(q, 2)
        q.claim("w0")
        q.complete(a["id"], {})
        audit = exactly_once(tmp_path)
        assert not audit["ok"]  # b is still pending
        assert any(b["id"] in p for p in audit["problems"])

    def test_digest_match(self):
        ref = {"k1": "aa", "k2": "bb"}
        assert _digest_match(ref, {"k1": "aa"})["ok"]
        assert not _digest_match(ref, {"k1": "XX"})["ok"]
        assert not _digest_match(ref, {"k3": "cc"})["ok"]
        assert not _digest_match(ref, {})["ok"]  # nothing compared


class TestEndToEnd:
    def test_partition_scenario_quick(self, tmp_path):
        # one full scenario through the public entry point: real solver
        # jobs, live coordinator, proxy partition, degrade + heal
        report = run_matrix(tmp_path / "m", scenarios=["partition"],
                            quick=True, seed=11)
        assert report["ok"], report
        (scenario,) = report["scenarios"]
        assert scenario["checks"]["worked_through_partition"]
        assert (tmp_path / "m" / "chaos-report.json").is_file()
