"""Tests for the multi-host campaign fabric (DESIGN §12).

Covers the wire protocol, the shared backoff helper, the coordinator's
RPC surface and reaper, exactly-once retry semantics under idempotency
tokens, lease-loss ownership guards, coordinator restart, degraded
direct-file mode with re-attach, and cross-shard work stealing.
"""

import socket
import threading
import time

import pytest

from repro.jobs import Backoff, JobError, JobQueue
from repro.jobs.fabric import (
    Coordinator,
    CoordinatorUnreachable,
    FabricClient,
    FabricQueue,
    ProtocolError,
    encode_frame,
    new_token,
    parse_address,
    recv_frame,
    send_frame,
)


def submit_n(queue, n, **kwargs):
    return [
        queue.submit({"name": f"job{i}"}, cache_key=f"key{i}", **kwargs)
        for i in range(n)
    ]


@pytest.fixture
def coord(tmp_path):
    c = Coordinator(tmp_path, lease_seconds=30.0, reap_interval=60.0)
    with c:
        yield c


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "hello", "n": [1, 2, 3]})
            assert recv_frame(b) == {"op": "hello", "n": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"op": "x"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 30).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_tokens_unique(self):
        tokens = {new_token() for _ in range(256)}
        assert len(tokens) == 256

    def test_parse_address(self):
        assert parse_address("10.0.0.1:9999") == ("10.0.0.1", 9999)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestBackoff:
    def test_full_jitter_bounds(self):
        b = Backoff(base=0.1, factor=2.0, cap=1.0, seed=42)
        for k in range(12):
            ceiling = min(1.0, 0.1 * 2.0 ** k)
            assert 0.0 <= b.next() <= ceiling

    def test_deterministic_with_seed(self):
        seq = [Backoff(base=0.05, seed=7).next() for _ in range(1)]
        assert seq == [Backoff(base=0.05, seed=7).next()]

    def test_reset_rearms(self):
        b = Backoff(base=0.5, cap=64.0, seed=0)
        for _ in range(6):
            b.next()
        grown = b.peek_ceiling()
        b.reset()
        assert b.peek_ceiling() < grown


class TestRpc:
    def test_claim_complete_over_socket(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 2)
        fq = FabricQueue(coord.address, name="w0")
        fq.attach()
        rec = fq.claim()
        assert rec is not None and rec["state"] == "running"
        done = fq.complete(rec["id"], {"ok": 1}, attempt=rec["attempts"])
        assert done["state"] == "done"
        assert fq.counts()["done"] == 1

    def test_remote_pid_tag_never_probed_locally(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 1)
        fq = FabricQueue(coord.address, name="w0")
        rec = fq.claim()
        assert "!" in rec["pid"]  # host!pid — not a local pid
        # a reap must NOT kill it: the pid is not probeable here and the
        # lease (30 s) is fresh
        assert coord.reap_once() == []

    def test_claim_token_retry_returns_same_record(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 3)
        client = FabricClient(coord.address)
        token = new_token()
        first = client.call("claim", token=token, worker="w0", pid="h!1")
        again = client.call("claim", token=token, worker="w0", pid="h!1")
        assert first["id"] == again["id"]  # dedup, not a second job
        assert JobQueue(tmp_path).counts()["running"] == 1

    def test_complete_token_retry_applied_once(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 1)
        fq = FabricQueue(coord.address, name="w0")
        rec = fq.claim()
        client = FabricClient(coord.address)
        token = new_token()
        kwargs = dict(token=token, id=rec["id"], shard=0, worker="w0",
                      result={"n": 1})
        one = client.call("complete", **kwargs)
        two = client.call("complete", **kwargs)
        assert one["state"] == two["state"] == "done"
        ops = [op for op in JobQueue(tmp_path)._ops()
               if op.get("op") == "done"]
        assert len(ops) == 1  # journaled exactly once

    def test_remote_error_maps_to_job_error(self, tmp_path, coord):
        fq = FabricQueue(coord.address, name="w0")
        with pytest.raises(JobError):
            fq.complete("j9999-nope", {})

    def test_unknown_op_is_definitive(self, coord):
        client = FabricClient(coord.address)
        from repro.jobs.fabric import RpcRemoteError

        with pytest.raises(RpcRemoteError):
            client.call("made_up_op")

    def test_unreachable_raises_after_deadline(self):
        # a bound-then-closed port: nothing listens there
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()[:2]
        probe.close()
        client = FabricClient(addr, rpc_timeout=0.1, deadline=0.3)
        t0 = time.monotonic()
        with pytest.raises(CoordinatorUnreachable):
            client.call("hello")
        assert time.monotonic() - t0 < 5.0

    def test_stale_response_discarded_by_token(self, coord, tmp_path):
        # handcrafted connection: send two hellos, read the responses
        # through a client whose pending token is the SECOND one
        sock = socket.create_connection(coord.address)
        try:
            send_frame(sock, {"op": "hello", "token": "old"})
            client = FabricClient(coord.address)
            client._sock = sock  # adopt the polluted connection
            value = client.call("hello")  # fresh token
            assert value["epoch"] == coord.epoch
        finally:
            client.close()


class TestLeasesAndOwnership:
    def test_expired_lease_reaped_and_stale_finish_rejected(self, tmp_path):
        coord = Coordinator(tmp_path, lease_seconds=0.1, reap_interval=60.0)
        with coord:
            submit_n(JobQueue(tmp_path), 1)
            fq = FabricQueue(coord.address, name="w0")
            rec = fq.claim()
            time.sleep(0.25)  # no heartbeat: lease expires
            reaped = coord.reap_once()
            assert [j for _, j in reaped] == [rec["id"]]
            assert coord.metrics.counter("lease_expirations").value == 1
            # the job was reclaimed by another worker
            fq2 = FabricQueue(coord.address, name="w1")
            rec2 = fq2.claim()
            assert rec2["id"] == rec["id"]
            # the original owner's finish is definitively rejected
            with pytest.raises(JobError):
                fq.complete(rec["id"], {}, attempt=rec["attempts"])
            # the new owner's completes fine
            fq2.complete(rec["id"], {}, attempt=rec2["attempts"])
            assert JobQueue(tmp_path).counts()["done"] == 1

    def test_heartbeat_renews_lease(self, tmp_path):
        coord = Coordinator(tmp_path, lease_seconds=0.3, reap_interval=60.0)
        with coord:
            submit_n(JobQueue(tmp_path), 1)
            fq = FabricQueue(coord.address, name="w0")
            rec = fq.claim()
            for _ in range(4):
                time.sleep(0.1)
                assert fq.heartbeat(rec["id"]) is True
            assert coord.reap_once() == []  # renewed throughout
            assert fq.heartbeat("j9999-nope") is False


class TestRestart:
    def test_restart_preserves_state_and_bumps_epoch(self, tmp_path):
        coord = Coordinator(tmp_path, lease_seconds=30.0)
        coord.start()
        submit_n(JobQueue(tmp_path), 2)
        fq = FabricQueue(coord.address, name="w0")
        rec = fq.claim()
        host, port = coord.address
        epoch = coord.epoch
        coord.stop()

        coord2 = Coordinator(tmp_path, host=host, port=port,
                             lease_seconds=30.0)
        with coord2:
            assert coord2.epoch == epoch + 1
            # the running claim survived the restart (journal replay)...
            fq2 = FabricQueue(coord2.address, name="w0")
            fq2._shards[rec["id"]] = 0
            done = fq2.complete(rec["id"], {"ok": 1},
                                attempt=rec["attempts"])
            assert done["state"] == "done"
            # ...and the second job is still claimable
            assert fq2.claim() is not None


class TestDegradedMode:
    def test_fallback_to_direct_files_and_reattach(self, tmp_path):
        coord = Coordinator(tmp_path, lease_seconds=30.0)
        coord.start()
        host, port = coord.address
        submit_n(JobQueue(tmp_path), 2)
        fq = FabricQueue((host, port), roots=[tmp_path], name="w0",
                         rpc_timeout=0.1, deadline=0.3, probe_base=0.01)
        fq.attach()
        coord.stop()

        rec = fq.claim()  # served by the direct file queue
        assert rec is not None
        assert fq.degraded is True
        fq.complete(rec["id"], {"ok": 1}, attempt=rec["attempts"])
        assert JobQueue(tmp_path).counts()["done"] == 1

        # the second job may drain in degraded mode too — what matters
        # is that it drains, and that the facade re-attaches once the
        # coordinator returns
        rec2 = fq.claim()
        assert rec2 is not None
        fq.complete(rec2["id"], {"ok": 2}, attempt=rec2["attempts"])
        assert JobQueue(tmp_path).counts()["done"] == 2

        coord2 = Coordinator(tmp_path, host=host, port=port,
                             lease_seconds=30.0)
        with coord2:
            deadline = time.monotonic() + 10.0
            while fq.degraded and time.monotonic() < deadline:
                fq.drained()  # any RPC drives the re-attach probe
                time.sleep(0.02)
            assert fq.degraded is False
            assert fq.drained() is True  # answered by the coordinator

    def test_no_roots_means_no_work_while_away(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()[:2]
        probe.close()
        fq = FabricQueue(addr, name="w0", rpc_timeout=0.1, deadline=0.2)
        assert fq.claim() is None
        assert fq.drained() is False  # unknowable: keep polling
        assert fq.heartbeat("j0000-x") is True  # don't abandon the job


class TestWorkStealing:
    def test_claim_drains_sibling_shards(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        submit_n(JobQueue(b), 2)  # all work lives on shard 1
        coord = Coordinator(tmp_path, shards=[a, b], lease_seconds=30.0)
        with coord:
            fq = FabricQueue(coord.address, name="w0")
            seen = []
            while True:
                rec = fq.claim()
                if rec is None:
                    break
                seen.append(rec["shard"])
                fq.complete(rec["id"], {}, attempt=rec["attempts"])
            assert seen == [1, 1]  # stolen across the empty home shard
            assert fq.drained() is True


class TestConcurrentClients:
    def test_many_threads_never_double_claim(self, tmp_path, coord):
        submit_n(JobQueue(tmp_path), 16)
        claimed: list[str] = []
        lock = threading.Lock()

        def drain(name):
            fq = FabricQueue(coord.address, name=name)
            while True:
                rec = fq.claim(name)
                if rec is None:
                    if fq.drained():
                        return
                    time.sleep(0.005)
                    continue
                with lock:
                    claimed.append(rec["id"])
                fq.complete(rec["id"], {}, worker=name,
                            attempt=rec["attempts"])

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert sorted(claimed) == sorted(f"j{i:04d}-job{i}"
                                         for i in range(16))
