"""Preemption-safety regression (ISSUE satellite): a supervised run
preempted mid-evolution and resumed from its checkpoint finishes
bitwise-identical to an uninterrupted run at the same dt.

Also covers the wave-mode RunConfig builders and the reusable
:func:`repro.analysis.estimate_run_cost` §III-D estimator.
"""

import math

import numpy as np
import pytest

from repro.analysis import JobCost, estimate_run_cost
from repro.io import RunConfig, find_latest_valid, restore_wave_solver
from repro.jobs import state_digest
from repro.resilience import SupervisedRun
from repro.solver import WaveSolver


def wave_cfg(**kw):
    base = dict(name="w", solver="wave", domain_half_width=8.0,
                base_level=1, max_level=2, t_end=2.0, courant=0.25,
                ko_sigma=0.05, regrid_every=4, regrid_eps=3e-5,
                extraction_radii=[4.0])
    base.update(kw)
    return RunConfig(**base)


def run_supervised(solver, cfg, **kwargs):
    return SupervisedRun(solver, **kwargs).run(
        cfg.t_end, regrid_every=cfg.regrid_every,
        regrid_eps=cfg.regrid_eps, max_level=cfg.max_level,
    )


class TestWaveConfig:
    def test_build_solver(self):
        cfg = wave_cfg()
        solver = cfg.build_solver()
        assert isinstance(solver, WaveSolver)
        assert solver.mesh.num_octants == 8  # uniform base_level=1
        assert solver.courant == cfg.courant
        # deterministic Gaussian pulse: unit amplitude at the origin,
        # decaying outward, π = 0
        assert float(np.max(solver.state[0])) <= 1.0
        assert float(np.max(solver.state[0])) > 0.5
        assert float(np.max(np.abs(solver.state[1]))) == 0.0
        twin = wave_cfg(name="other-label").build_solver()
        np.testing.assert_array_equal(solver.state, twin.state)

    def test_validate_rejects_bad_solver(self):
        with pytest.raises(ValueError):
            wave_cfg(solver="maxwell").validate()
        with pytest.raises(ValueError):
            wave_cfg(t_end=0.0).validate()


class TestPreemptResume:
    def test_bitwise_identical_resume(self, tmp_path):
        cfg = wave_cfg()

        # uninterrupted twin
        ref = cfg.build_solver()
        ref_report = run_supervised(ref, cfg)
        assert ref_report["step_count"] >= 6

        # preempted run: checkpoint + yield once step 3 is reached
        ckdir = tmp_path / "ck"
        solver = cfg.build_solver()
        preempted = SupervisedRun(
            solver, checkpoint_dir=ckdir,
            preempt_check=lambda: solver.step_count >= 3,
        ).run(cfg.t_end, regrid_every=cfg.regrid_every,
              regrid_eps=cfg.regrid_eps, max_level=cfg.max_level)
        assert preempted["preempted"] is True
        assert preempted["step_count"] == 3
        assert preempted["checkpoint"]

        # resume from the checkpoint and march to the same t_end
        path = find_latest_valid(ckdir)
        assert path is not None
        resumed = restore_wave_solver(path, ko_sigma=cfg.ko_sigma)
        assert resumed.step_count == 3
        assert resumed.t == pytest.approx(solver.t)
        report = run_supervised(resumed, cfg)

        assert report["preempted"] is False
        assert report["step_count"] == ref_report["step_count"]
        assert report["t"] == ref_report["t"]
        # THE contract: bitwise-identical final state
        np.testing.assert_array_equal(resumed.state, ref.state)
        assert state_digest(resumed.state) == state_digest(ref.state)

    def test_preempt_before_first_step(self, tmp_path):
        cfg = wave_cfg(t_end=1.0)
        solver = cfg.build_solver()
        report = SupervisedRun(
            solver, checkpoint_dir=tmp_path, preempt_check=lambda: True,
        ).run(cfg.t_end)
        assert report["preempted"] is True
        assert report["step_count"] == 0
        assert find_latest_valid(tmp_path) is not None

    def test_no_preempt_check_runs_to_completion(self):
        cfg = wave_cfg(t_end=1.0)
        solver = cfg.build_solver()
        report = run_supervised(solver, cfg)
        assert report["preempted"] is False
        assert solver.t >= cfg.t_end - 1e-12


class TestCostModel:
    def test_estimate_fields(self):
        cfg = wave_cfg()
        cost = estimate_run_cost(cfg)
        assert isinstance(cost, JobCost)
        assert cost.octants == 8
        assert cost.dof == 2
        assert cost.per_step_seconds > 0.0
        assert cost.total_seconds == pytest.approx(
            cost.per_step_seconds * cost.steps)
        # steps = ceil(t_end / (courant * min_dx))
        tree = cfg.build_tree()
        min_dx = float(tree.domain.octant_dx(tree.levels, 7).min())
        assert cost.steps == max(1, math.ceil(cfg.t_end
                                              / (cfg.courant * min_dx)))

    def test_memoised_by_cache_key(self):
        cfg = wave_cfg()
        assert estimate_run_cost(cfg) is estimate_run_cost(
            wave_cfg(name="relabelled"))

    def test_scales_with_resolution_and_t_end(self):
        base = estimate_run_cost(wave_cfg())
        finer = estimate_run_cost(wave_cfg(base_level=2, max_level=3))
        longer = estimate_run_cost(wave_cfg(t_end=4.0))
        assert finer.octants > base.octants
        assert finer.total_seconds > base.total_seconds
        assert longer.steps > base.steps
        assert longer.total_seconds > base.total_seconds

    def test_bssn_dof(self):
        cost = estimate_run_cost(RunConfig(name="b", t_end=1.0,
                                           base_level=2, max_level=3))
        assert cost.dof == 24
        assert cost.total_seconds > 0.0
