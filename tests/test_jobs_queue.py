"""Tests for the crash-safe persistent job queue.

Covers the ISSUE-mandated contention properties: N processes claiming
concurrently never double-claim, and a killed worker's ``running`` entry
is reaped and requeued (with its checkpoint intact) so the job resumes
rather than restarts.
"""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.jobs import (
    CANCELLED,
    DONE,
    PENDING,
    RUNNING,
    JobError,
    JobQueue,
    QueueSaturated,
)


def submit_n(queue, n, **kwargs):
    return [
        queue.submit({"name": f"job{i}"}, cache_key=f"key{i}", **kwargs)
        for i in range(n)
    ]


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0", priority=3,
                       fault_steps=(2, 5), cost={"total_seconds": 1.5})
        assert rec["state"] == PENDING
        assert rec["priority"] == 3
        assert rec["fault_steps"] == [2, 5]

        claimed = q.claim("w0")
        assert claimed["id"] == rec["id"]
        assert claimed["state"] == RUNNING
        assert claimed["worker"] == "w0"
        assert claimed["pid"] == os.getpid()
        assert claimed["attempts"] == 1

        done = q.complete(rec["id"], {"answer": 42})
        assert done["state"] == DONE
        assert done["result"] == {"answer": 42}
        assert q.drained()

    def test_persistence_across_instances(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        q.claim("w0")
        # a brand-new handle on the same directory replays the journal
        q2 = JobQueue(tmp_path)
        assert q2.jobs()[rec["id"]]["state"] == RUNNING
        q2.complete(rec["id"], {})
        assert JobQueue(tmp_path).counts()[DONE] == 1

    def test_fail_records_error(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        q.claim("w0")
        failed = q.fail(rec["id"], "boom")
        assert failed["state"] == "failed"
        assert failed["error"] == "boom"

    def test_cancel_pending_only(self, tmp_path):
        q = JobQueue(tmp_path)
        a, b = submit_n(q, 2)
        assert q.cancel(a["id"])["state"] == CANCELLED
        q.claim("w0")
        with pytest.raises(JobError):
            q.cancel(b["id"])  # running: must be preempted instead
        with pytest.raises(JobError):
            q.cancel("j9999-nope")

    def test_invalid_transitions(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        with pytest.raises(JobError):
            q.complete(rec["id"], {})  # not running yet
        with pytest.raises(JobError):
            q.requeue(rec["id"])

    def test_requeue_preempt_counters(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        first = q.claim("w0")
        first_claim_wall = first["claimed"]
        back = q.requeue(rec["id"], checkpoint="/tmp/ck", reason="preempt")
        assert back["state"] == PENDING
        assert back["preemptions"] == 1
        assert back["checkpoint"] == "/tmp/ck"
        again = q.claim("w1")
        assert again["attempts"] == 2
        # queue latency is measured to the *first* claim
        assert again["claimed"] == first_claim_wall

    def test_preempt_request_running_only(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        assert not q.request_preempt(rec["id"])  # pending: no-op
        assert not q.preempt_requested(rec["id"])
        q.claim("w0")
        assert q.request_preempt(rec["id"])
        assert q.preempt_requested(rec["id"])
        q.requeue(rec["id"], reason="preempt")
        assert not q.preempt_requested(rec["id"])  # cleared on requeue


class TestBackpressure:
    def test_queue_saturated(self, tmp_path):
        q = JobQueue(tmp_path, max_pending=2)
        submit_n(q, 2)
        with pytest.raises(QueueSaturated):
            q.submit({"name": "c"}, cache_key="k2")
        # draining the backlog re-opens admission
        q.claim("w0")
        q.submit({"name": "c"}, cache_key="k2")


class TestCrashSafety:
    def test_torn_final_line_ignored(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        q.claim("w0")
        with open(q.path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "done", "id": "' + rec["id"])  # torn append
        jobs = JobQueue(tmp_path).jobs()
        assert jobs[rec["id"]]["state"] == RUNNING  # the op never happened

    def test_torn_midfile_line_raises(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit({"name": "a"}, cache_key="k0")
        with open(q.path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "broken"\n')
        q.submit({"name": "b"}, cache_key="k1")  # appends after the tear
        with pytest.raises(json.JSONDecodeError):
            JobQueue(tmp_path).jobs()

    def test_reap_dead_worker_requeues_with_checkpoint(self, tmp_path):
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")
        # give the job an earlier checkpoint so reap must preserve it
        q.claim("w0")
        q.requeue(rec["id"], checkpoint="/tmp/ck-a", reason="preempt")

        ctx = mp.get_context("fork")

        def claim_and_die(root):
            JobQueue(root).claim("doomed")
            os._exit(0)  # simulates a crash: no cleanup, entry left running

        p = ctx.Process(target=claim_and_die, args=(str(tmp_path),))
        p.start()
        p.join(30.0)
        assert p.exitcode == 0
        assert q.jobs()[rec["id"]]["state"] == RUNNING

        requeued = q.reap()
        assert requeued == [rec["id"]]
        back = q.jobs()[rec["id"]]
        assert back["state"] == PENDING
        assert back["checkpoint"] == "/tmp/ck-a"  # resume, don't restart

    def test_reap_leaves_live_workers_alone(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit({"name": "a"}, cache_key="k0")
        q.claim("w0")  # our own (live) pid
        assert q.reap() == []

    def test_reap_lease_expiry(self, tmp_path):
        q = JobQueue(tmp_path, lease_seconds=0.05)
        rec = q.submit({"name": "a"}, cache_key="k0")
        q.claim("w0")
        time.sleep(0.1)
        assert q.reap() == [rec["id"]]  # pid alive but lease expired

    def test_crash_between_claim_append_and_fsync(self, tmp_path):
        # the narrowest crash window: the claim line is written and
        # flushed but the claimer dies before fsync returns.  Replay
        # must yield exactly one owner (the dead claimer) and the job
        # must be recoverable — never lost, never double-owned.
        q = JobQueue(tmp_path)
        rec = q.submit({"name": "a"}, cache_key="k0")

        ctx = mp.get_context("fork")
        p = ctx.Process(target=_claim_then_die_before_fsync,
                        args=(str(tmp_path),))
        p.start()
        p.join(30.0)
        assert p.exitcode == 7  # died inside the fsync

        jobs = JobQueue(tmp_path).jobs()  # replay does not raise
        entry = jobs[rec["id"]]
        # the append made it into the shared file view: exactly one
        # owner, and it is the dead claimer
        assert entry["state"] == RUNNING
        assert entry["worker"] == "victim"
        claim_ops = [op for op in JobQueue(tmp_path)._ops()
                     if op.get("op") == "claim"]
        assert len(claim_ops) == 1

        # recovery: the dead pid is reaped, then re-claimed exactly once
        assert q.reap() == [rec["id"]]
        back = q.claim("w1")
        assert back["id"] == rec["id"]
        assert back["attempts"] == 2
        assert q.claim("w2") is None  # still exactly one owner


def _claim_then_die_before_fsync(root):
    """Claim, but simulate a power cut between the journal append
    (write + flush) and fsync visibility."""
    import repro.jobs.queue as qmod

    class DyingOs:
        def __getattr__(self, name):
            return getattr(os, name)

        @staticmethod
        def fsync(fd):
            os._exit(7)

    qmod.os = DyingOs()
    JobQueue(root).claim("victim")  # never returns


def _contender(root, out_path):
    """Claim-and-complete loop used by the contention test processes."""
    q = JobQueue(root)
    claimed = []
    while True:
        rec = q.claim(f"p{os.getpid()}")
        if rec is None:
            if q.drained():
                break
            time.sleep(0.002)
            continue
        claimed.append(rec["id"])
        q.complete(rec["id"], {"by": os.getpid()})
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(claimed, fh)


class TestContention:
    def test_no_double_claims_across_processes(self, tmp_path):
        n_jobs, n_procs = 24, 4
        q = JobQueue(tmp_path)
        submit_n(q, n_jobs)

        ctx = mp.get_context("fork")
        outs = [tmp_path / f"claims-{i}.json" for i in range(n_procs)]
        procs = [
            ctx.Process(target=_contender, args=(str(tmp_path), str(out)))
            for out in outs
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60.0)
        assert all(p.exitcode == 0 for p in procs)

        all_claims = []
        for out in outs:
            all_claims += json.loads(out.read_text())
        # every job claimed exactly once — the journal shows no
        # double-claims even under 4-way contention
        assert sorted(all_claims) == sorted(f"j{i:04d}-job{i}"
                                            for i in range(n_jobs))
        counts = q.counts()
        assert counts[DONE] == n_jobs
        assert q.drained()
