"""Tests for the cost-model scheduler policy, the canonical
``RunConfig.cache_key``, and the content-addressed result cache."""

import json

import numpy as np
import pytest

from repro.io import RunConfig
from repro.jobs import (
    JobQueue,
    ResultCache,
    auto_preempt_target,
    claim_order,
    pack,
)


def rec(seq, *, state="pending", priority=0, seconds=1.0,
        preempt_requested=False):
    return {
        "id": f"j{seq:04d}-x", "seq": seq, "state": state,
        "priority": priority, "cost": {"total_seconds": seconds},
        "preempt_requested": preempt_requested,
    }


class TestClaimOrder:
    def test_priority_classes_first(self):
        order = claim_order([
            rec(0, priority=0, seconds=0.1),
            rec(1, priority=5, seconds=99.0),
            rec(2, priority=-1, seconds=0.01),
        ])
        assert [r["seq"] for r in order] == [1, 0, 2]

    def test_sjf_within_class(self):
        order = claim_order([
            rec(0, seconds=3.0), rec(1, seconds=1.0), rec(2, seconds=2.0),
        ])
        assert [r["seq"] for r in order] == [1, 2, 0]

    def test_submission_order_breaks_ties(self):
        order = claim_order([rec(2), rec(0), rec(1)])
        assert [r["seq"] for r in order] == [0, 1, 2]

    def test_only_pending_considered(self):
        order = claim_order([
            rec(0, state="running"), rec(1, state="done"), rec(2),
        ])
        assert [r["seq"] for r in order] == [2]

    def test_missing_cost_sorts_first(self):
        unpriced = rec(1)
        unpriced["cost"] = None
        assert claim_order([rec(0, seconds=5.0), unpriced])[0]["seq"] == 1


class TestPack:
    def test_lpt_makespan(self):
        records = [rec(i, seconds=s)
                   for i, s in enumerate([7.0, 5.0, 4.0, 3.0, 1.0])]
        bins, makespan = pack(records, 2)
        assert sum(len(b) for b in bins) == 5
        # LPT on {7,5,4,3,1} with 2 bins: {7,3} vs {5,4,1} → makespan 10
        assert makespan == pytest.approx(10.0)

    def test_running_work_counts(self):
        bins, makespan = pack([rec(0, state="running", seconds=2.0)], 3)
        assert makespan == pytest.approx(2.0)
        assert sum(len(b) for b in bins) == 1

    def test_empty_and_validation(self):
        bins, makespan = pack([], 2)
        assert makespan == 0.0
        with pytest.raises(ValueError):
            pack([], 0)


class TestAutoPreempt:
    def test_lowest_priority_victim(self):
        victim = auto_preempt_target([
            rec(0, state="running", priority=2, seconds=1.0),
            rec(1, state="running", priority=0, seconds=1.0),
        ], priority=5)
        assert victim["seq"] == 1

    def test_tie_broken_by_largest_cost(self):
        victim = auto_preempt_target([
            rec(0, state="running", priority=0, seconds=1.0),
            rec(1, state="running", priority=0, seconds=9.0),
        ], priority=5)
        assert victim["seq"] == 1  # the long job loses least progress

    def test_no_strictly_lower_priority(self):
        assert auto_preempt_target(
            [rec(0, state="running", priority=5)], priority=5) is None
        assert auto_preempt_target([rec(0)], priority=5) is None  # pending

    def test_already_requested_excluded(self):
        assert auto_preempt_target(
            [rec(0, state="running", priority=0, preempt_requested=True)],
            priority=5) is None


def wave_cfg(**kw):
    base = dict(name="w", solver="wave", domain_half_width=8.0,
                base_level=1, max_level=2, t_end=1.0, courant=0.25,
                extraction_radii=[4.0])
    base.update(kw)
    return RunConfig(**base)


class TestCacheKey:
    def test_stable_and_name_independent(self):
        a = wave_cfg(name="first")
        b = wave_cfg(name="second")
        assert a.cache_key() == a.cache_key()
        assert a.cache_key() == b.cache_key()  # the label is not physics

    def test_physics_sensitive(self):
        keys = {
            wave_cfg().cache_key(),
            wave_cfg(courant=0.2).cache_key(),
            wave_cfg(t_end=2.0).cache_key(),
            wave_cfg(base_level=2).cache_key(),
            wave_cfg(solver="bssn").cache_key(),
        }
        assert len(keys) == 5

    def test_numeric_normalisation(self):
        # ints written as floats (and vice versa) hash identically
        assert wave_cfg(t_end=1).cache_key() == wave_cfg(t_end=1.0).cache_key()
        assert (wave_cfg(base_level=1.0).cache_key()
                == wave_cfg(base_level=1).cache_key())
        assert (wave_cfg(extraction_radii=[8]).cache_key()
                == wave_cfg(extraction_radii=[8.0]).cache_key())

    def test_json_field_order_independent(self, tmp_path):
        cfg = wave_cfg()
        data = json.loads(cfg.to_json())
        shuffled = {k: data[k] for k in sorted(data, reverse=True)}
        path = tmp_path / "p.json"
        path.write_text(json.dumps(shuffled))
        assert RunConfig.load(path).cache_key() == cfg.cache_key()

    def test_load_validates(self, tmp_path):
        cfg = wave_cfg(t_end=-1.0)
        path = tmp_path / "bad.json"
        path.write_text(cfg.to_json())
        with pytest.raises(ValueError):
            RunConfig.load(path)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"t": 1.0, "steps": 3})
        assert cache.get(key) == {"t": 1.0, "steps": 3}
        assert key in cache
        assert len(cache) == 1

    def test_arrays_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        psi = np.linspace(0.0, 1.0, 17)
        cache.put("k" * 8, {"ok": True}, arrays={"psi4": psi})
        out = cache.arrays("k" * 8)
        np.testing.assert_array_equal(out["psi4"], psi)
        assert cache.arrays("m" * 8) is None

    def test_first_write_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 8, {"winner": 1})
        kept = cache.put("k" * 8, {"winner": 2})
        assert kept == {"winner": 1}
        assert cache.get("k" * 8) == {"winner": 1}

    def test_malformed_keys_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                cache.get(bad)

    def test_no_partial_entries_visible(self, tmp_path):
        # a temp dir left by a crashed writer is invisible to readers
        cache = ResultCache(tmp_path)
        (tmp_path / ".tmp-deadbeef-123").mkdir()
        assert len(cache) == 0


def _racing_putter(root, key, start_path, out_path):
    """Spin until the shared start flag appears, then put under ``key``
    — every racer writes its own pid as the payload."""
    import json as _json
    import os as _os
    import pathlib
    import time as _time

    cache = ResultCache(root)
    deadline = _time.monotonic() + 30.0
    while not pathlib.Path(start_path).exists():
        if _time.monotonic() > deadline:
            _os._exit(2)
        _time.sleep(0.001)
    kept = cache.put(key, {"winner": _os.getpid()})
    pathlib.Path(out_path).write_text(_json.dumps(kept))


class TestCrossProcessDedup:
    def test_concurrent_puts_one_winner_no_debris(self, tmp_path):
        # two workers finish the identical spec at the same instant on a
        # shared filesystem: first write wins, everyone converges on the
        # same entry, and no temp debris survives the race
        import multiprocessing as mp

        key = "c" * 64
        root = tmp_path / "cache"
        root.mkdir()
        start = tmp_path / "go"
        outs = [tmp_path / f"kept-{i}.json" for i in range(4)]
        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=_racing_putter,
                             args=(str(root), key, str(start), str(out)))
                 for out in outs]
        for p in procs:
            p.start()
        start.touch()  # the barrier drops: all four put at once
        for p in procs:
            p.join(60.0)
        assert all(p.exitcode == 0 for p in procs)

        cache = ResultCache(root)
        winner = cache.get(key)
        assert winner is not None
        # every process converged on the single stored entry
        kept = [json.loads(out.read_text()) for out in outs]
        assert all(k == winner for k in kept)
        # the winning pid is one of the racers, stored exactly once
        assert len(cache) == 1
        assert not list(root.glob(".tmp-*"))  # losers cleaned up


class TestInFlightDedup:
    def test_duplicate_deferred_until_twin_finishes(self, tmp_path):
        q = JobQueue(tmp_path)
        first = q.submit({"name": "a"}, cache_key="same")
        dup = q.submit({"name": "a-dup"}, cache_key="same")
        other = q.submit({"name": "b"}, cache_key="other")

        got = q.claim("w0")
        assert got["id"] == first["id"]
        # the duplicate is deferred while its twin runs; 'other' is not
        got2 = q.claim("w1")
        assert got2["id"] == other["id"]
        assert q.claim("w2") is None

        q.complete(first["id"], {})
        got3 = q.claim("w2")
        assert got3["id"] == dup["id"]  # now claimable → cache hit


class TestCacheEnumeration:
    """keys()/iter_entries()/total_bytes() — the ingest scan's API."""

    def test_keys_sorted_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        for k in ("b" * 8, "a" * 8, "c" * 8):
            cache.put(k, {"k": k})
        assert cache.keys() == sorted(["a" * 8, "b" * 8, "c" * 8])
        assert len(cache) == 3

    def test_iter_entries_reports_sizes_and_arrays(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 8, {"n": 1})
        cache.put("b" * 8, {"n": 2},
                  arrays={"x": np.arange(64, dtype=np.float64)})
        entries = {e.key: e for e in cache.iter_entries()}
        assert set(entries) == {"a" * 8, "b" * 8}
        assert not entries["a" * 8].has_arrays
        assert entries["b" * 8].has_arrays
        assert entries["b" * 8].result == {"n": 2}
        assert entries["b" * 8].nbytes > entries["a" * 8].nbytes
        assert cache.total_bytes() == sum(e.nbytes
                                          for e in entries.values())

    def test_iter_entries_skips_unreadable_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 8, {"ok": True})
        cache.put("b" * 8, {"ok": True})
        (tmp_path / ("b" * 8) / "result.json").write_text("{torn")
        assert [e.key for e in cache.iter_entries()] == ["a" * 8]

    def test_torn_arrays_return_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 8, {"ok": True},
                  arrays={"x": np.arange(1000, dtype=np.float64)})
        npz = tmp_path / ("a" * 8) / "arrays.npz"
        npz.write_bytes(npz.read_bytes()[:64])  # torn by a crash
        assert cache.arrays("a" * 8) is None
        # the entry itself is still enumerable with its result intact
        [entry] = list(cache.iter_entries())
        assert entry.has_arrays  # file exists, even if unreadable
        assert entry.result == {"ok": True}
