"""Tests for shared-point repair and planar slices."""

import numpy as np
import pytest

from repro.bssn import Puncture, mesh_puncture_state
from repro.mesh import (
    Mesh,
    ascii_level_map,
    build_shared_point_map,
    field_slice,
    level_profile,
    level_slice,
    repair_shared_points,
    shared_point_divergence,
)
from repro.octree import LinearOctree, bbh_grid


@pytest.fixture(scope="module")
def mesh():
    return Mesh(bbh_grid(mass_ratio=2.0, max_level=5, base_level=2))


class TestSharedPoints:
    def test_uniform_grid_face_sharing(self):
        """On a uniform 4³ grid, interior faces/edges/corners duplicate:
        the duplicate count is exactly computable."""
        m = Mesh(LinearOctree.uniform(1))
        spm = build_shared_point_map(m)
        # 2x2x2 octants, each 7³; global distinct points = 13³
        total = 8 * 343
        distinct = 13**3
        assert spm.num_shared_points == total - distinct + spm.num_groups

    def test_consistent_field_zero_divergence(self, mesh):
        c = mesh.coordinates()
        u = c[..., 0] ** 2 - 0.3 * c[..., 1] * c[..., 2]
        spm = build_shared_point_map(mesh)
        assert shared_point_divergence(mesh, u, spm) < 1e-10 * np.abs(u).max()

    def test_repair_restores_consistency(self, mesh):
        rng = np.random.default_rng(1)
        c = mesh.coordinates()
        u = np.sin(0.2 * c[..., 0]) + rng.normal(scale=1e-4, size=c[..., 0].shape)
        spm = build_shared_point_map(mesh)
        assert shared_point_divergence(mesh, u, spm) > 1e-5
        repair_shared_points(mesh, u, spm)
        assert shared_point_divergence(mesh, u, spm) == 0.0

    def test_repair_preserves_consistent_fields(self, mesh):
        """Repair is a projection: already-consistent data is unchanged
        up to the averaging roundoff."""
        c = mesh.coordinates()
        u = c[..., 0] + 2.0 * c[..., 2]
        before = u.copy()
        repair_shared_points(mesh, u)
        assert np.allclose(u, before, atol=1e-12)

    def test_multi_dof(self, mesh):
        u = mesh_puncture_state(mesh, [Puncture(1.0, [0.0, 0.0, 0.0])])
        spm = build_shared_point_map(mesh)
        repair_shared_points(mesh, u, spm)
        assert shared_point_divergence(mesh, u, spm) < 1e-14

    def test_shape_validated(self, mesh):
        with pytest.raises(ValueError):
            repair_shared_points(mesh, np.zeros((3, 7, 7, 7)))


class TestSlices:
    def test_level_slice_matches_tree(self, mesh):
        grid = level_slice(mesh.tree, axis=2, offset=0.0, resolution=32)
        assert grid.shape == (32, 32)
        assert grid.min() >= mesh.tree.min_level
        assert grid.max() <= mesh.tree.max_level
        # refinement concentrated near the punctures on the z=0 plane
        assert grid.max() > grid[0, 0]

    def test_level_profile(self, mesh):
        xs, lv = level_profile(mesh.tree, axis=0, num=100)
        assert len(xs) == len(lv) == 100
        assert lv.max() == mesh.tree.max_level

    def test_field_slice_interpolates(self, mesh):
        c = mesh.coordinates()
        u = c[..., 0] + 2.0 * c[..., 1]
        grid = field_slice(mesh, u, axis=2, offset=0.0, resolution=16, pad=2.0)
        dom = mesh.tree.domain
        span = np.linspace(dom.xmin + 2.0, dom.xmax - 2.0, 16)
        a, b = np.meshgrid(span, span, indexing="ij")
        assert np.allclose(grid, a + 2.0 * b, atol=1e-8)

    def test_ascii_map(self, mesh):
        art = ascii_level_map(mesh.tree, resolution=24)
        rows = art.splitlines()
        assert len(rows) == 24
        assert all(len(r) == 24 for r in rows)
        assert any(ch.isdigit() for ch in art)
