"""Tests for inter-level transfer operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    child_block,
    extrapolation_matrix_1d,
    paper_interp_ops,
    parent_from_children,
    prolong_blocks,
    prolong_flops,
    prolongation_matrix_1d,
)

R = 7


def _block(fn, origin=(0.0, 0.0, 0.0), h=1.0, n=R):
    c = np.arange(n) * h
    z, y, x = np.meshgrid(c + origin[2], c + origin[1], c + origin[0], indexing="ij")
    return fn(x, y, z)


class TestProlongationMatrix:
    def test_shape_and_partition_of_unity(self):
        P = prolongation_matrix_1d(R)
        assert P.shape == (13, 7)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_even_rows_identity(self):
        P = prolongation_matrix_1d(R)
        assert np.allclose(P[::2], np.eye(7))

    def test_exact_on_degree6(self):
        P = prolongation_matrix_1d(R)
        x = np.arange(7.0)
        xf = np.arange(13.0) / 2.0
        for p in range(7):
            assert np.allclose(P @ x**p, xf**p, atol=1e-9)


class TestProlongBlocks:
    def test_polynomial_exact(self):
        u = _block(lambda x, y, z: x**4 + x * y * z + z**6)
        up = prolong_blocks(u)
        assert up.shape == (13, 13, 13)
        expect = _block(lambda x, y, z: x**4 + x * y * z + z**6, h=0.5, n=13)
        assert np.allclose(up, expect, atol=1e-7)

    def test_leading_axes(self):
        u = np.random.default_rng(0).normal(size=(2, 3, R, R, R))
        up = prolong_blocks(u)
        assert up.shape == (2, 3, 13, 13, 13)
        assert np.allclose(up[1, 2], prolong_blocks(u[1, 2]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            prolong_blocks(np.zeros((5, 5, 5)))

    def test_flop_counts_positive(self):
        assert prolong_flops(7) > 0
        assert paper_interp_ops(7) == 3 * 13 * 343


class TestChildParent:
    def test_child_block_exact_on_poly(self):
        u = _block(lambda x, y, z: x**3 - 2 * y**2 + z)
        for ci in range(8):
            cb = child_block(u, ci)
            cx, cy, cz = ci & 1, (ci >> 1) & 1, (ci >> 2) & 1
            expect = _block(
                lambda x, y, z: x**3 - 2 * y**2 + z,
                origin=(cx * 3.0, cy * 3.0, cz * 3.0),
                h=0.5,
            )
            assert np.allclose(cb, expect, atol=1e-9), f"child {ci}"

    def test_parent_from_children_inverts_child_block(self):
        u = _block(lambda x, y, z: np.sin(x) + np.cos(y * z / 5.0))
        kids = np.stack([child_block(u, ci) for ci in range(8)], axis=-4)
        back = parent_from_children(kids)
        # injection picks exactly the coarse points: exact roundtrip
        assert np.allclose(back, u, atol=1e-12)

    def test_parent_shape_validation(self):
        with pytest.raises(ValueError):
            parent_from_children(np.zeros((7, 7, 7)))


class TestExtrapolation:
    def test_exact_on_cubic(self):
        for side in ("low", "high"):
            E = extrapolation_matrix_1d(7, 3, side)
            x = np.arange(7.0)
            xe = np.array([-3.0, -2.0, -1.0]) if side == "low" else np.array([7.0, 8.0, 9.0])
            for p in range(5):  # degree-4 extrapolation
                assert np.allclose(E @ x**p, xe**p, atol=1e-9), (side, p)

    def test_row_count(self):
        E = extrapolation_matrix_1d(7, 3, "low")
        assert E.shape == (3, 7)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_prolong_then_inject_is_identity(seed):
    """Property: injection (even-sample) of a prolongation recovers the
    original block exactly."""
    u = np.random.default_rng(seed).normal(size=(R, R, R))
    up = prolong_blocks(u)
    assert np.allclose(up[::2, ::2, ::2], u, atol=1e-12)
