"""Tests for wavelet indicators and regrid/transfer."""

import numpy as np
import pytest

from repro.octree import LinearOctree, bbh_grid
from repro.mesh import (
    Mesh,
    field_wavelets,
    regrid_flags,
    remesh,
    transfer_fields,
    wavelet_coefficients,
)


def _gaussian(c, width=2.0, center=(0.0, 0.0, 0.0)):
    d2 = sum((c[..., i] - center[i]) ** 2 for i in range(3))
    return np.exp(-d2 / width**2)


class TestWavelets:
    def test_zero_on_low_degree_polynomials(self):
        mesh = Mesh(LinearOctree.uniform(2))
        c = mesh.coordinates()
        u = 1.0 + c[..., 0] + c[..., 1] ** 2 + c[..., 2] ** 3
        w = wavelet_coefficients(u)
        assert w.max() < 1e-8 * max(1.0, np.abs(u).max())

    def test_large_on_unresolved_feature(self):
        mesh = Mesh(LinearOctree.uniform(3))
        c = mesh.coordinates()
        u = _gaussian(c, width=3.0)
        w = wavelet_coefficients(u)
        # octants near the feature have large coefficients
        centers = mesh.tree.domain.to_physical(mesh.tree.octants.centers())
        near = np.linalg.norm(centers, axis=1) < 20.0
        assert near.any() and (~near).any()
        assert w[near].max() > 100 * max(w[~near].max(), 1e-16)

    def test_multi_dof_takes_max(self):
        mesh = Mesh(LinearOctree.uniform(2))
        c = mesh.coordinates()
        u = np.stack([np.zeros_like(c[..., 0]), _gaussian(c, width=3.0)])
        w = field_wavelets(u)
        assert w.shape == (mesh.num_octants,)
        assert np.allclose(w, wavelet_coefficients(u[1]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            wavelet_coefficients(np.zeros((4, 5, 5, 5)))


class TestRegrid:
    def test_refines_at_feature(self):
        mesh = Mesh(LinearOctree.uniform(3, domain=None))
        c = mesh.coordinates()
        u = _gaussian(c, width=2.0)
        refine, coarsen = regrid_flags(mesh, u, eps=1e-4, max_level=5)
        assert refine.any()
        new = remesh(mesh, refine, coarsen)
        assert new.tree.max_level > mesh.tree.max_level
        assert new.tree.is_complete()

    def test_coarsens_smooth_region(self):
        g = bbh_grid(mass_ratio=1.0, max_level=6, base_level=2)
        mesh = Mesh(g)
        u = mesh.allocate()  # identically zero: everything may coarsen
        refine, coarsen = regrid_flags(mesh, u, eps=1e-4, min_level=1)
        assert not refine.any()
        assert coarsen.any()
        new = remesh(mesh, refine, coarsen)
        assert new.num_octants < mesh.num_octants

    def test_max_level_respected(self):
        mesh = Mesh(LinearOctree.uniform(3))
        c = mesh.coordinates()
        u = _gaussian(c, width=1.0)
        refine, _ = regrid_flags(mesh, u, eps=1e-12, max_level=3)
        assert not refine.any()


class TestTransfer:
    def test_identity_when_grid_unchanged(self):
        mesh = Mesh(LinearOctree.uniform(2))
        rng = np.random.default_rng(0)
        u = rng.normal(size=(mesh.num_octants, 7, 7, 7))
        out = transfer_fields(mesh, mesh, u)
        assert np.array_equal(out, u)

    def test_polynomial_preserved_under_refinement(self):
        old = Mesh(LinearOctree.uniform(2))
        c = old.coordinates()
        u = c[..., 0] ** 3 + c[..., 1] * c[..., 2]
        flags = np.zeros(old.num_octants, dtype=bool)
        flags[10:20] = True
        new = remesh(old, flags, np.zeros_like(flags))
        v = transfer_fields(old, new, u)
        cn = new.coordinates()
        expect = cn[..., 0] ** 3 + cn[..., 1] * cn[..., 2]
        assert np.abs(v - expect).max() < 1e-9 * np.abs(expect).max()

    def test_polynomial_preserved_under_coarsening(self):
        old = Mesh(LinearOctree.uniform(3))
        c = old.coordinates()
        u = 2.0 * c[..., 0] - c[..., 1] ** 2 + 0.1 * c[..., 2] ** 3
        flags = np.ones(old.num_octants, dtype=bool)
        new_tree = old.tree.coarsen(flags)
        assert len(new_tree) < old.num_octants
        new = Mesh(new_tree)
        v = transfer_fields(old, new, u)
        cn = new.coordinates()
        expect = 2.0 * cn[..., 0] - cn[..., 1] ** 2 + 0.1 * cn[..., 2] ** 3
        assert np.abs(v - expect).max() < 1e-9 * np.abs(expect).max()

    def test_multi_dof_transfer(self):
        old = Mesh(LinearOctree.uniform(2))
        c = old.coordinates()
        u = np.stack([c[..., 0], c[..., 1] ** 2])
        flags = np.zeros(old.num_octants, dtype=bool)
        flags[0] = True
        new = remesh(old, flags, np.zeros_like(flags))
        v = transfer_fields(old, new, u)
        assert v.shape[0] == 2
        cn = new.coordinates()
        assert np.allclose(v[0], cn[..., 0], atol=1e-9)
        assert np.allclose(v[1], cn[..., 1] ** 2, atol=1e-9)

    def test_shape_validation(self):
        old = Mesh(LinearOctree.uniform(1))
        with pytest.raises(ValueError):
            transfer_fields(old, old, np.zeros((3, 7, 7, 7)))

    def test_roundtrip_refine_then_coarsen(self):
        """Refine everywhere then coarsen back: injection recovers the
        original values exactly (fine even points coincide)."""
        old = Mesh(LinearOctree.uniform(2))
        rng = np.random.default_rng(1)
        u = rng.normal(size=(old.num_octants, 7, 7, 7))
        fine = remesh(old, np.ones(old.num_octants, dtype=bool),
                      np.zeros(old.num_octants, dtype=bool))
        uf = transfer_fields(old, fine, u)
        back_tree = fine.tree.coarsen(np.ones(fine.num_octants, dtype=bool))
        back = Mesh(back_tree)
        ub = transfer_fields(fine, back, uf)
        assert back.num_octants == old.num_octants
        assert np.allclose(ub, u, atol=1e-11)


class TestSimultaneousRefineCoarsen:
    def test_refine_and_coarsen_in_one_cycle(self):
        """A regrid can deepen one region while coarsening another."""
        mesh = Mesh(LinearOctree.uniform(3))
        n = mesh.num_octants
        centers = mesh.tree.domain.to_physical(mesh.tree.octants.centers())
        refine = np.linalg.norm(centers, axis=1) < 15.0
        # coarsen the x > 25 half: complete sibling families live there
        coarsen = centers[:, 0] > 25.0
        new = remesh(mesh, refine, coarsen)
        assert new.tree.is_complete()
        assert new.tree.max_level > 3  # refined near the centre
        assert new.tree.min_level < 3  # coarsened in the far field
