"""Tests for the octant-to-patch (unzip) and patch-to-octant (zip) kernels."""

import numpy as np
import pytest

from repro.octree import LinearOctree, balance, bbh_grid
from repro.mesh import Mesh


def _mesh_bbh(max_level=6, base_level=2):
    return Mesh(bbh_grid(mass_ratio=2.0, max_level=max_level, base_level=base_level))


def _poly(c):
    x, y, z = c[..., 0], c[..., 1], c[..., 2]
    return x**3 + 2.0 * y**2 * z - z + 0.5 * x * y


@pytest.fixture(scope="module")
def mesh():
    return _mesh_bbh()


@pytest.fixture(scope="module")
def poly_setup(mesh):
    u = _poly(mesh.coordinates())
    expect = _poly(mesh.patch_coordinates())
    return u, expect


class TestScatter:
    def test_interior_octants_exact_on_poly(self, mesh, poly_setup):
        u, expect = poly_setup
        p = mesh.unzip(u)
        interior = np.ones(mesh.num_octants, dtype=bool)
        interior[mesh.boundary_octants()] = False
        scale = np.abs(expect).max()
        assert np.abs(p[interior] - expect[interior]).max() < 1e-11 * scale

    def test_boundary_extrapolation_close_on_poly(self, mesh, poly_setup):
        """Degree-4 extrapolation on a cubic is exact up to roundoff
        amplification in cascaded corners."""
        u, expect = poly_setup
        p = mesh.unzip(u)
        scale = np.abs(expect).max()
        assert np.abs(p - expect).max() < 1e-7 * scale

    def test_zip_unzip_roundtrip(self, mesh):
        rng = np.random.default_rng(3)
        u = rng.normal(size=(mesh.num_octants, 7, 7, 7))
        assert np.array_equal(mesh.zip(mesh.unzip(u)), u)

    def test_gather_equals_scatter(self, mesh):
        """Fig. 7's two algorithms are functionally identical."""
        rng = np.random.default_rng(4)
        u = rng.normal(size=(mesh.num_octants, 7, 7, 7))
        assert np.allclose(mesh.unzip(u), mesh.unzip(u, method="gather"),
                           rtol=0, atol=1e-12)

    def test_multi_dof(self, mesh):
        rng = np.random.default_rng(5)
        u = rng.normal(size=(3, mesh.num_octants, 7, 7, 7))
        p = mesh.unzip(u)
        assert p.shape == (3, mesh.num_octants, 13, 13, 13)
        for d in range(3):
            assert np.allclose(p[d], mesh.unzip(u[d]), atol=1e-14)

    def test_invalid_method(self, mesh):
        u = mesh.allocate()
        with pytest.raises(ValueError):
            mesh.unzip(u, method="bogus")

    def test_out_buffer_fully_overwritten(self, mesh):
        """unzip(out=...) into a NaN-poisoned reused buffer is
        byte-identical to a fresh unzip — every patch point is written."""
        rng = np.random.default_rng(21)
        u = rng.normal(size=(2, mesh.num_octants, 7, 7, 7))
        ref = mesh.unzip(u)
        buf = np.full_like(ref, np.nan)
        got = mesh.unzip(u, out=buf)
        assert got is buf
        assert np.array_equal(ref, got)

    def test_coalesced_scatter_byte_identical(self, mesh):
        """The coalesced fancy-index scatter matches the per-group
        scatter bitwise, and gather_to_patches to roundoff."""
        from repro.mesh import gather_to_patches

        rng = np.random.default_rng(22)
        u = rng.normal(size=(mesh.num_octants, 7, 7, 7))
        ref = mesh.unzip(u)
        got = mesh.unzip(u, out=np.full_like(ref, np.nan), coalesce=True)
        assert np.array_equal(ref, got)
        gat = gather_to_patches(mesh.plan, u)
        assert np.allclose(ref, gat, rtol=0, atol=1e-12)

    def test_coalesced_scatter_with_pool_reuses_buffers(self, mesh):
        from repro.perf import BufferPool

        pool = BufferPool()
        rng = np.random.default_rng(23)
        u = rng.normal(size=(mesh.num_octants, 7, 7, 7))
        ref = mesh.unzip(u)
        out = np.empty_like(ref)
        assert np.array_equal(mesh.unzip(u, out=out, coalesce=True, pool=pool), ref)
        misses = pool.misses
        assert np.array_equal(mesh.unzip(u, out=out, coalesce=True, pool=pool), ref)
        assert pool.misses == misses  # second unzip allocates nothing

    def test_shape_validation(self, mesh):
        with pytest.raises(ValueError):
            mesh.unzip(np.zeros((5, 7, 7, 7)))
        with pytest.raises(ValueError):
            mesh.zip(np.zeros((5, 13, 13, 13)))


class TestUniformGrid:
    def test_same_level_padding_matches_neighbor(self):
        """On a uniform grid unzip is pure copying: padding equals the
        neighbour's interior values bitwise.

        The field must be consistent at duplicated shared points (an
        invariant of the block storage), so it is built from coordinates
        rather than random per-block data.
        """
        mesh = Mesh(LinearOctree.uniform(2))
        c = mesh.coordinates()
        u = np.sin(c[..., 0] * 0.3) + np.cos(c[..., 1] * 0.2) * c[..., 2]
        p = mesh.unzip(u)
        tree = mesh.tree
        oc = tree.octants
        size = oc.size[0]
        # pick an octant with an -x neighbour
        i = int(np.flatnonzero(oc.x > 0)[0])
        jx = int(oc.x[i] - size)
        nb = int(
            tree.locate(
                np.array([jx], dtype=np.uint64), oc.y[i : i + 1], oc.z[i : i + 1]
            )[0]
        )
        # patch x-padding [0:3] of i == neighbour's interior columns 3:6
        assert np.array_equal(p[i, 3:10, 3:10, 0:3], u[nb, :, :, 3:6])
        # shared face: interior column 3 of the patch equals own column 0
        assert np.array_equal(p[i, 3:10, 3:10, 3], u[i, :, :, 0])

    def test_no_prolongations_on_uniform(self):
        mesh = Mesh(LinearOctree.uniform(2))
        assert mesh.plan.stats.prolong_blocks_scatter == 0
        assert mesh.plan.stats.prolong_points == 0
        assert mesh.plan.stats.inject_points == 0


class TestAdaptiveConsistency:
    def test_smooth_field_small_jump(self):
        """Unzipping a smooth non-polynomial field: interpolation error is
        bounded by the truncation order."""
        mesh = _mesh_bbh(max_level=6, base_level=3)
        c = mesh.coordinates()
        u = np.sin(0.2 * c[..., 0]) * np.cos(0.15 * c[..., 1] + 0.1 * c[..., 2])
        p = mesh.unzip(u)
        pc = mesh.patch_coordinates()
        expect = np.sin(0.2 * pc[..., 0]) * np.cos(0.15 * pc[..., 1] + 0.1 * pc[..., 2])
        interior = np.ones(mesh.num_octants, dtype=bool)
        interior[mesh.boundary_octants()] = False
        assert np.abs(p[interior] - expect[interior]).max() < 5e-4

    def test_plan_stats_populated(self, mesh):
        st = mesh.plan.stats
        assert st.copy_points > 0
        assert st.prolong_points > 0
        assert st.inject_points > 0
        assert st.prolong_blocks_scatter > 0
        # gather mode re-interpolates per pair: strictly more prolongations
        assert st.prolong_pairs_gather > st.prolong_blocks_scatter
        assert st.interp_flops("gather") > st.interp_flops("scatter")


class TestInterpolateToPoints:
    def test_polynomial_exact(self, mesh):
        u = _poly(mesh.coordinates())
        rng = np.random.default_rng(7)
        pts = rng.uniform(-20, 20, size=(40, 3))
        vals = mesh.interpolate_to_points(u, pts)
        expect = _poly(pts)
        assert np.allclose(vals, expect, rtol=1e-9, atol=1e-8)

    def test_outside_domain_raises(self, mesh):
        u = mesh.allocate()
        with pytest.raises(ValueError):
            mesh.interpolate_to_points(u, np.array([[1e6, 0.0, 0.0]]))


class TestCoordinates:
    def test_spacing_matches_dx(self, mesh):
        c = mesh.coordinates()
        got = c[:, 0, 0, 1, 0] - c[:, 0, 0, 0, 0]
        assert np.allclose(got, mesh.dx)

    def test_patch_coordinates_extend_block(self, mesh):
        c = mesh.coordinates()
        pc = mesh.patch_coordinates()
        assert np.allclose(pc[:, 3:10, 3:10, 3:10], c)
        assert np.allclose(pc[:, 0, 0, 0, 0], c[:, 0, 0, 0, 0] - 3 * mesh.dx)


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import balance


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_unzip_property_random_balanced_trees(seed):
    """Property: on any random balanced tree, (a) zip∘unzip is the
    identity, (b) gather ≡ scatter, (c) unzip reproduces a smooth global
    function on all interior patches to interpolation accuracy."""
    rng = np.random.default_rng(seed)
    t = LinearOctree.uniform(2)
    for _ in range(2):
        flags = rng.random(len(t)) < 0.25
        flags &= t.levels < 5
        t = t.refine(flags)
    mesh = Mesh(balance(t))

    c = mesh.coordinates()
    u = np.sin(0.05 * c[..., 0]) * np.cos(0.07 * c[..., 1]) + 0.02 * c[..., 2]
    p = mesh.unzip(u)
    assert np.array_equal(mesh.zip(p), u)
    assert np.allclose(p, mesh.unzip(u, method="gather"), atol=1e-13)

    pc = mesh.patch_coordinates()
    expect = (
        np.sin(0.05 * pc[..., 0]) * np.cos(0.07 * pc[..., 1])
        + 0.02 * pc[..., 2]
    )
    interior = np.ones(mesh.num_octants, dtype=bool)
    interior[mesh.boundary_octants()] = False
    if interior.any():
        assert np.abs(p[interior] - expect[interior]).max() < 1e-5
