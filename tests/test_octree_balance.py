"""Tests for 2:1 balancing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import LinearOctree, balance, is_balanced


def _point_refined_tree(depth: int) -> LinearOctree:
    """Refine repeatedly at the domain centre.

    The leaf containing the centre always nests at the corner of the (+,+,+)
    octant, so after two rounds it touches level-1 leaves across the centre
    planes: maximally unbalanced.
    """
    from repro.octree.keys import LATTICE

    c = np.array([int(LATTICE) // 2], dtype=np.uint64)
    t = LinearOctree.uniform(1)
    for _ in range(depth):
        flags = np.zeros(len(t), dtype=bool)
        flags[t.locate(c, c, c)[0]] = True
        t = t.refine(flags)
    return t


def test_uniform_is_balanced():
    assert is_balanced(LinearOctree.uniform(3))


def test_single_split_is_balanced():
    t = LinearOctree.uniform(1)
    flags = np.zeros(8, dtype=bool)
    flags[0] = True
    assert is_balanced(t.refine(flags))


def test_point_refinement_unbalanced_then_balanced():
    t = _point_refined_tree(4)
    assert not is_balanced(t)
    b = balance(t)
    assert is_balanced(b)
    assert b.is_complete()


def test_balance_preserves_fine_leaves():
    """Balance only refines; every original leaf survives or is split."""
    t = _point_refined_tree(3)
    b = balance(t)
    assert len(b) >= len(t)
    assert b.max_level == t.max_level
    # every balanced leaf is contained in exactly one original leaf with
    # level >= the original's level
    oc = b.octants
    idx = t.locate(oc.x, oc.y, oc.z)
    assert np.all(b.levels >= t.levels[idx])


def test_balance_idempotent():
    t = balance(_point_refined_tree(4))
    t2 = balance(t)
    assert len(t2) == len(t)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_random_trees_balance(seed):
    rng = np.random.default_rng(seed)
    t = LinearOctree.uniform(1)
    for _ in range(3):
        flags = rng.random(len(t)) < 0.25
        flags &= t.levels < 7
        t = t.refine(flags)
    b = balance(t)
    assert is_balanced(b)
    assert b.is_complete()
    assert b.max_level == t.max_level
