"""Tests for Morton key encoding/decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.keys import (
    LATTICE,
    MAX_DEPTH,
    key_range_size,
    morton_decode,
    morton_encode,
    octant_size,
)

COORD = st.integers(min_value=0, max_value=int(LATTICE) - 1)


def test_encode_origin_is_zero():
    assert morton_encode(np.array([0]), np.array([0]), np.array([0]))[0] == 0


def test_encode_unit_steps():
    # x is the least significant bit, then y, then z
    assert morton_encode(np.array([1]), np.array([0]), np.array([0]))[0] == 1
    assert morton_encode(np.array([0]), np.array([1]), np.array([0]))[0] == 2
    assert morton_encode(np.array([0]), np.array([0]), np.array([1]))[0] == 4


def test_encode_max_coordinate():
    m = int(LATTICE) - 1
    key = morton_encode(np.array([m]), np.array([m]), np.array([m]))[0]
    assert key == (1 << (3 * MAX_DEPTH)) - 1


@given(x=COORD, y=COORD, z=COORD)
@settings(max_examples=200, deadline=None)
def test_roundtrip(x, y, z):
    key = morton_encode(np.array([x]), np.array([y]), np.array([z]))
    rx, ry, rz = morton_decode(key)
    assert (int(rx[0]), int(ry[0]), int(rz[0])) == (x, y, z)


@given(st.lists(st.tuples(COORD, COORD, COORD), min_size=2, max_size=50))
@settings(max_examples=50, deadline=None)
def test_order_preserved_within_octant_prefix(pts):
    """Keys of points inside one level-1 octant share the top 3 bits."""
    arr = np.array(pts, dtype=np.uint64)
    keys = morton_encode(arr[:, 0], arr[:, 1], arr[:, 2])
    half = int(LATTICE) // 2
    octant_id = (
        (arr[:, 0] >= half).astype(int)
        + 2 * (arr[:, 1] >= half).astype(int)
        + 4 * (arr[:, 2] >= half).astype(int)
    )
    top = (keys >> np.uint64(3 * (MAX_DEPTH - 1))).astype(int)
    assert np.array_equal(top, octant_id)


def test_octant_size():
    assert octant_size(0) == int(LATTICE)
    assert octant_size(MAX_DEPTH) == 1
    assert octant_size(np.array([1, 2])).tolist() == [
        int(LATTICE) // 2,
        int(LATTICE) // 4,
    ]


def test_key_range_size():
    assert key_range_size(0) == 8**MAX_DEPTH
    assert key_range_size(MAX_DEPTH) == 1


def test_vectorised_encode_matches_scalar():
    rng = np.random.default_rng(0)
    pts = rng.integers(0, int(LATTICE), size=(100, 3), dtype=np.uint64)
    keys = morton_encode(pts[:, 0], pts[:, 1], pts[:, 2])
    for i in range(0, 100, 17):
        k = morton_encode(pts[i : i + 1, 0], pts[i : i + 1, 1], pts[i : i + 1, 2])
        assert k[0] == keys[i]
