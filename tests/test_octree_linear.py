"""Tests for LinearOctree: construction, completeness, location, refine/coarsen."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import Domain, LinearOctree, Octants
from repro.octree.keys import LATTICE


class TestUniform:
    def test_counts(self):
        for lv in range(0, 4):
            t = LinearOctree.uniform(lv)
            assert len(t) == 8**lv
            assert t.is_complete()
            assert t.min_level == t.max_level == lv

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            LinearOctree.uniform(-1)
        with pytest.raises(ValueError):
            LinearOctree.uniform(99)


class TestCompleteness:
    def test_root_is_complete(self):
        assert LinearOctree(Octants.root()).is_complete()

    def test_missing_leaf_detected(self):
        t = LinearOctree.uniform(2)
        broken = LinearOctree(t.octants[:-1])
        assert not broken.is_complete()

    def test_duplicates_removed(self):
        t = LinearOctree.uniform(1)
        doubled = Octants.concatenate([t.octants, t.octants])
        t2 = LinearOctree(doubled)
        assert len(t2) == 8
        assert t2.is_complete()


class TestLocate:
    def test_locate_centers(self):
        t = LinearOctree.uniform(2)
        oc = t.octants
        c = oc.centers().astype(np.uint64)
        idx = t.locate(c[:, 0], c[:, 1], c[:, 2])
        assert np.array_equal(idx, np.arange(len(t)))

    def test_locate_anchor_belongs_to_octant(self):
        t = LinearOctree.uniform(3)
        oc = t.octants
        idx = t.locate(oc.x, oc.y, oc.z)
        assert np.array_equal(idx, np.arange(len(t)))

    def test_locate_checked_outside(self):
        t = LinearOctree.uniform(1)
        idx = t.locate_checked(
            np.array([-1, int(LATTICE)]), np.array([0, 0]), np.array([0, 0])
        )
        assert np.array_equal(idx, [-1, -1])


class TestRefineCoarsen:
    def test_refine_one(self):
        t = LinearOctree.uniform(1)
        flags = np.zeros(8, dtype=bool)
        flags[0] = True
        t2 = t.refine(flags)
        assert len(t2) == 7 + 8
        assert t2.is_complete()
        assert t2.max_level == 2

    def test_refine_all(self):
        t = LinearOctree.uniform(1)
        t2 = t.refine(np.ones(8, dtype=bool))
        assert len(t2) == 64
        assert t2.is_complete()

    def test_coarsen_inverts_refine(self):
        t = LinearOctree.uniform(2)
        flags = np.zeros(len(t), dtype=bool)
        flags[:8] = True  # first family (siblings are contiguous in SFC order)
        t2 = t.coarsen(flags)
        assert len(t2) == len(t) - 7
        assert t2.is_complete()

    def test_coarsen_partial_family_is_noop(self):
        t = LinearOctree.uniform(2)
        flags = np.zeros(len(t), dtype=bool)
        flags[:7] = True  # only 7 of the 8 siblings
        t2 = t.coarsen(flags)
        assert len(t2) == len(t)

    def test_coarsen_root_level_is_noop(self):
        t = LinearOctree(Octants.root())
        t2 = t.coarsen(np.array([True]))
        assert len(t2) == 1

    def test_flags_shape_checked(self):
        t = LinearOctree.uniform(1)
        with pytest.raises(ValueError):
            t.refine(np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            t.coarsen(np.zeros(3, dtype=bool))


@given(seed=st.integers(0, 2**31 - 1), rounds=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_random_refinement_keeps_completeness(seed, rounds):
    """Property: arbitrary refine/coarsen sequences preserve completeness."""
    rng = np.random.default_rng(seed)
    t = LinearOctree.uniform(1)
    for _ in range(rounds):
        if rng.random() < 0.7:
            flags = rng.random(len(t)) < 0.3
            flags &= t.levels < 6
            t = t.refine(flags)
        else:
            flags = rng.random(len(t)) < 0.5
            t = t.coarsen(flags)
        assert t.is_complete()
        keys = t.keys
        assert np.all(np.diff(keys.astype(np.float64)) > 0)  # sorted, unique


def test_from_refinement_ball():
    dom = Domain(-1.0, 1.0)

    def fn(centers, sizes, _lv):
        return (np.linalg.norm(centers, axis=1) < 0.5) & (sizes > 0.25)

    t = LinearOctree.from_refinement(fn, domain=dom, base_level=2, max_level=5)
    assert t.is_complete()
    assert t.max_level > 2
    # refined octants concentrate near the center
    oc = t.octants
    fine = oc.level == t.max_level
    centers = dom.to_physical(oc.centers()[fine])
    assert np.all(np.linalg.norm(centers, axis=1) < 0.5 + 0.5)


def test_num_grid_points():
    t = LinearOctree.uniform(2)
    assert t.num_grid_points(r=7) == 64 * 343


class TestDomain:
    def test_roundtrip(self):
        dom = Domain(-40.0, 40.0)
        x = np.array([-40.0, 0.0, 39.5])
        assert np.allclose(dom.to_physical(dom.to_lattice(x)), x)

    def test_octant_dx(self):
        dom = Domain(0.0, 64.0)
        # level-0 octant spans the domain: 7 points -> h = 64/6
        assert np.isclose(dom.octant_dx(0, 7), 64.0 / 6.0)
        assert np.isclose(dom.octant_dx(3, 7), 8.0 / 6.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Domain(1.0, 1.0)


class TestFromPoints:
    def test_splits_until_capacity(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(scale=3.0, size=(500, 3))
        t = LinearOctree.from_points(pts, max_per_octant=16,
                                     domain=Domain(-50.0, 50.0), max_level=8)
        assert t.is_complete()
        counts = t.point_counts(pts)
        assert counts.sum() == 500
        assert counts.max() <= 16

    def test_respects_max_level(self):
        pts = np.zeros((100, 3))  # all points coincide: cannot separate
        t = LinearOctree.from_points(pts, max_per_octant=4,
                                     domain=Domain(-1.0, 1.0), max_level=5)
        assert t.max_level == 5

    def test_refines_where_points_cluster(self):
        rng = np.random.default_rng(1)
        cluster = rng.normal(scale=0.5, size=(300, 3)) + np.array([10.0, 0, 0])
        t = LinearOctree.from_points(cluster, max_per_octant=8,
                                     domain=Domain(-50.0, 50.0), max_level=8)
        oc = t.octants
        fine = oc.level == t.max_level
        centers = t.domain.to_physical(oc.centers()[fine])
        assert np.linalg.norm(
            centers - np.array([10.0, 0, 0]), axis=1
        ).max() < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearOctree.from_points(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            LinearOctree.from_points(np.full((2, 3), 1e9),
                                     domain=Domain(-1.0, 1.0))
