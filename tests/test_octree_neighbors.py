"""Tests for adjacency / neighbour maps."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    LinearOctree,
    balance,
    bbh_grid,
    build_adjacency,
    face_neighbors,
)


def _touch(a, b) -> bool:
    """Geometric predicate: two octants share at least a corner but do not
    overlap (brute-force reference for adjacency)."""
    ax0, ay0, az0 = int(a.x[0]), int(a.y[0]), int(a.z[0])
    asz = int(a.size[0])
    bx0, by0, bz0 = int(b.x[0]), int(b.y[0]), int(b.z[0])
    bsz = int(b.size[0])
    gaps = [
        max(ax0, bx0) - min(ax0 + asz, bx0 + bsz),
        max(ay0, by0) - min(ay0 + asz, by0 + bsz),
        max(az0, bz0) - min(az0 + asz, bz0 + bsz),
    ]
    return max(gaps) == 0 and all(g <= 0 for g in gaps)


def test_uniform_interior_has_26_neighbors():
    t = LinearOctree.uniform(2)
    adj = build_adjacency(t)
    oc = t.octants
    sz = int(oc.size[0])
    lat = sz * 4
    interior = (
        (oc.x.astype(int) > 0)
        & (oc.x.astype(int) + sz < lat)
        & (oc.y.astype(int) > 0)
        & (oc.y.astype(int) + sz < lat)
        & (oc.z.astype(int) > 0)
        & (oc.z.astype(int) + sz < lat)
    )
    counts = np.diff(adj.indptr)
    assert np.all(counts[interior] == 26)
    # corner octant has 7 neighbours
    corner = (oc.x == 0) & (oc.y == 0) & (oc.z == 0)
    assert counts[np.flatnonzero(corner)[0]] == 7


def test_adjacency_symmetric():
    g = bbh_grid(mass_ratio=2.0, max_level=6, base_level=2)
    adj = build_adjacency(g)
    n = len(g)
    src = np.repeat(np.arange(n), np.diff(adj.indptr))
    pairs = set(zip(src.tolist(), adj.indices.tolist()))
    for i, j in list(pairs)[:2000]:
        assert (j, i) in pairs


def test_adjacency_matches_bruteforce_on_small_tree():
    t = LinearOctree.uniform(1)
    flags = np.zeros(8, dtype=bool)
    flags[0] = True
    t = balance(t.refine(flags))
    adj = build_adjacency(t)
    n = len(t)
    for i in range(n):
        expect = {
            j
            for j in range(n)
            if j != i and _touch(t.octants[i : i + 1], t.octants[j : j + 1])
        }
        got = set(adj.neighbors_of(i).tolist())
        assert got == expect, f"octant {i}: {got} != {expect}"


def test_face_neighbors_subset_of_adjacency():
    g = bbh_grid(mass_ratio=1.0, max_level=6, base_level=2)
    adj = build_adjacency(g)
    o2o = face_neighbors(g)
    n = len(g)
    for i in range(0, n, max(1, n // 50)):
        assert set(o2o.neighbors_of(i)) <= set(adj.neighbors_of(i))


def test_face_neighbor_counts_uniform():
    t = LinearOctree.uniform(2)
    o2o = face_neighbors(t)
    counts = np.diff(o2o.indptr)
    # interior: 6 faces; corner: 3
    assert counts.max() == 6
    assert counts.min() == 3


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_adjacency_levels_within_one(seed):
    """On balanced trees every adjacent pair differs by at most one level."""
    rng = np.random.default_rng(seed)
    t = LinearOctree.uniform(2)
    for _ in range(2):
        flags = rng.random(len(t)) < 0.2
        flags &= t.levels < 6
        t = t.refine(flags)
    t = balance(t)
    adj = build_adjacency(t)
    src = np.repeat(np.arange(len(t)), np.diff(adj.indptr))
    lv = t.levels.astype(int)
    assert np.all(np.abs(lv[src] - lv[adj.indices]) <= 1)
