"""Tests for SFC partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    LinearOctree,
    bbh_grid,
    build_adjacency,
    partition_octree,
)


def test_partition_covers_all_leaves():
    t = LinearOctree.uniform(3)
    p = partition_octree(t, 4)
    assert p.num_parts == 4
    total = sum(len(p.local_indices(r)) for r in range(4))
    assert total == len(t)
    assert np.array_equal(np.sort(np.unique(p.owner)), np.arange(4))


def test_partition_balanced_counts():
    t = LinearOctree.uniform(3)  # 512 leaves
    p = partition_octree(t, 8)
    sizes = p.part_sizes()
    assert sizes.sum() == 512
    assert sizes.max() - sizes.min() <= 1


def test_partition_single_rank():
    t = LinearOctree.uniform(2)
    p = partition_octree(t, 1)
    assert p.part_sizes().tolist() == [64]
    assert len(p.ghost_indices(0)) == 0


def test_partition_weighted():
    t = LinearOctree.uniform(2)
    w = np.ones(len(t))
    w[:32] = 3.0  # first half is 3x heavier
    p = partition_octree(t, 2, weights=w)
    # weighted halves: 3*32 = 96 vs 32 -> cut lands inside the heavy block
    assert p.offsets[1] < 32 + 8

    with pytest.raises(ValueError):
        partition_octree(t, 2, weights=np.ones(3))
    with pytest.raises(ValueError):
        partition_octree(t, 0)


def test_ghosts_are_cross_rank_neighbors():
    g = bbh_grid(mass_ratio=2.0, max_level=6, base_level=2)
    p = partition_octree(g, 4)
    adj = build_adjacency(g)
    for r in range(4):
        ghosts = p.ghost_indices(r, adj)
        assert np.all(p.owner[ghosts] != r)
        local = set(p.local_indices(r).tolist())
        # each ghost touches at least one local octant
        for gidx in ghosts[: min(len(ghosts), 40)]:
            assert local & set(adj.neighbors_of(int(gidx)).tolist())


def test_boundary_surface_less_than_total():
    g = bbh_grid(mass_ratio=2.0, max_level=6, base_level=2)
    adj = build_adjacency(g)
    p = partition_octree(g, 4)
    surf = p.boundary_surface(adj)
    assert surf.shape == (4,)
    assert np.all(surf > 0)
    assert surf.sum() < adj.num_pairs  # interior pairs dominate


@given(parts=st.integers(1, 16), level=st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_partition_offsets_monotone(parts, level):
    t = LinearOctree.uniform(level)
    p = partition_octree(t, parts)
    assert np.all(np.diff(p.offsets) >= 0)
    assert p.offsets[0] == 0
    assert p.offsets[-1] == len(t)


def test_more_ranks_higher_surface_to_volume():
    """Strong-scaling driver: ghost fraction grows with rank count."""
    g = bbh_grid(mass_ratio=2.0, max_level=6, base_level=3)
    adj = build_adjacency(g)
    fracs = []
    for parts in (2, 4, 8):
        p = partition_octree(g, parts)
        ghost = sum(len(p.ghost_indices(r, adj)) for r in range(parts))
        fracs.append(ghost / len(g))
    assert fracs[0] < fracs[-1]
