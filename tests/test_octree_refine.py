"""Tests for BBH refinement drivers (grids of Figs. 3, 12, 13, Table III)."""

import numpy as np

from repro.octree import (
    Domain,
    adaptivity_family,
    bbh_grid,
    build_adjacency,
    is_balanced,
    postmerger_grid,
)


class TestBBHGrid:
    def test_complete_and_balanced(self):
        g = bbh_grid(mass_ratio=4.0, max_level=8, base_level=2)
        assert g.is_complete()
        assert is_balanced(g)

    def test_finest_levels_at_punctures(self):
        q = 4.0
        g = bbh_grid(mass_ratio=q, separation=8.0, max_level=8, base_level=2)
        dom = g.domain
        m2 = 1.0 / (1.0 + q)
        m1 = q / (1.0 + q)
        x1, x2 = -8.0 * m2, 8.0 * m1
        finest = g.levels == g.max_level
        centers = dom.to_physical(g.octants.centers()[finest])
        d1 = np.linalg.norm(centers - np.array([x1, 0, 0]), axis=1)
        d2 = np.linalg.norm(centers - np.array([x2, 0, 0]), axis=1)
        # every finest octant is close to a puncture
        assert np.all(np.minimum(d1, d2) < 4.0)

    def test_higher_q_refines_smaller_bh_deeper(self):
        """For unequal masses the lighter puncture needs deeper refinement
        (paper Table I / Fig. 3): with fixed max_level the finest octants
        cluster at the small BH."""
        q = 4.0
        g = bbh_grid(mass_ratio=q, separation=8.0, max_level=9, base_level=2)
        m1 = q / (1.0 + q)
        x2 = 8.0 * m1  # small BH position
        finest = g.levels == g.max_level
        centers = g.domain.to_physical(g.octants.centers()[finest])
        d_small = np.linalg.norm(centers - np.array([x2, 0, 0]), axis=1)
        assert np.median(d_small) < 2.0

    def test_level_profile_along_x_axis(self):
        """Fig. 12 structure: levels peak at the punctures and decay with
        distance along the x axis."""
        g = bbh_grid(mass_ratio=8.0, separation=8.0, max_level=9, base_level=3)
        dom = g.domain
        xs = np.linspace(dom.xmin + 1, dom.xmax - 1, 200)
        pts = dom.to_lattice(np.stack([xs, 0 * xs, 0 * xs], axis=1)).astype(np.int64)
        idx = g.locate_checked(pts[:, 0], pts[:, 1], pts[:, 2])
        levels = g.levels[idx].astype(int)
        # deepest near puncture, shallow at boundary
        assert levels.max() == g.max_level
        assert levels[0] <= levels.max() - 3
        assert levels[-1] <= levels.max() - 3


class TestPostMerger:
    def test_shell_refined(self):
        g = postmerger_grid(wave_zone=(20.0, 60.0), wave_size=8.0, remnant_level=7)
        assert g.is_complete()
        assert is_balanced(g)
        oc = g.octants
        sizes = oc.size.astype(np.float64) * g.domain.lattice_h
        centers = g.domain.to_physical(oc.centers())
        r = np.linalg.norm(centers, axis=1)
        in_shell = (r > 25.0) & (r < 55.0)
        assert np.all(sizes[in_shell] <= 8.0 * 1.0001)


class TestAdaptivityFamily:
    def test_counts_monotone(self):
        counts = [len(adaptivity_family(i)) for i in range(1, 6)]
        assert counts == sorted(counts)
        assert counts[0] < 2000 and counts[-1] > 5000

    def test_adaptivity_decreases(self):
        """Cross-level adjacency fraction (interpolation work driver)
        decreases from m1 to m5 as in Table III."""
        fracs = []
        for i in range(1, 6):
            g = adaptivity_family(i)
            adj = build_adjacency(g)
            src = np.repeat(np.arange(len(g)), np.diff(adj.indptr))
            lv = g.levels.astype(int)
            fracs.append(float(np.mean(lv[src] != lv[adj.indices])))
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))

    def test_invalid_index(self):
        import pytest

        with pytest.raises(ValueError):
            adaptivity_family(0)
        with pytest.raises(ValueError):
            adaptivity_family(6)
