"""Tests for the simulated communicator, halo exchange, and scaling models."""

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.octree import LinearOctree, bbh_grid, partition_octree
from repro.parallel import (
    ScalingStudy,
    SimComm,
    build_halo_plan,
    distributed_unzip,
    efficiencies,
    exchange_ghosts,
)


class TestSimComm:
    def test_point_to_point(self):
        world = SimComm(2)
        a = np.arange(5.0)
        world.rank(0).send(1, a)
        b = world.rank(1).recv(0)
        assert np.array_equal(a, b)
        assert world.bytes_sent[0] == a.nbytes
        assert world.total_bytes() == a.nbytes

    def test_payload_copied(self):
        world = SimComm(2)
        a = np.zeros(3)
        world.rank(0).send(1, a)
        a[:] = 99.0
        assert np.array_equal(world.rank(1).recv(0), np.zeros(3))

    def test_missing_message(self):
        world = SimComm(2)
        with pytest.raises(RuntimeError):
            world.rank(0).recv(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimComm(0)
        world = SimComm(2)
        with pytest.raises(ValueError):
            world.rank(5)
        with pytest.raises(ValueError):
            world.rank(0).send(7, np.zeros(1))


@pytest.fixture(scope="module")
def bbh_mesh():
    return Mesh(bbh_grid(mass_ratio=2.0, max_level=6, base_level=2))


class TestHalo:
    def test_plan_send_recv_symmetry(self, bbh_mesh):
        part = partition_octree(bbh_mesh.tree, 4)
        plan = build_halo_plan(bbh_mesh, part)
        # everything a rank receives is sent by the owning rank
        for rank in range(4):
            ghosts = set(plan.ghost_lists[rank].tolist())
            sent_to_rank = set()
            for src in range(4):
                idx = plan.send_lists[src].get(rank)
                if idx is not None:
                    sent_to_rank.update(idx.tolist())
            assert ghosts == sent_to_rank

    def test_exchange_delivers_blocks(self, bbh_mesh):
        part = partition_octree(bbh_mesh.tree, 3)
        plan = build_halo_plan(bbh_mesh, part)
        c = bbh_mesh.coordinates()
        u = c[..., 0][None]  # 1-dof field = x coordinate
        locals_ = [u[:, part.offsets[r] : part.offsets[r + 1]] for r in range(3)]
        comm = SimComm(3)
        ghosts = exchange_ghosts(plan, locals_, comm, dof=1)
        for rank in range(3):
            for g, block in ghosts[rank].items():
                assert np.array_equal(block, u[:, g])

    def test_bytes_accounting(self, bbh_mesh):
        part = partition_octree(bbh_mesh.tree, 4)
        plan = build_halo_plan(bbh_mesh, part)
        expected = plan.bytes_per_exchange(r=7, dof=2)
        comm = SimComm(4)
        c = bbh_mesh.coordinates()
        u = np.stack([c[..., 0], c[..., 1]])
        distributed_unzip(bbh_mesh, part, u, comm)
        assert comm.total_bytes() == expected.sum()

    @pytest.mark.parametrize("ranks", [2, 3, 5])
    def test_distributed_unzip_equals_global(self, bbh_mesh, ranks):
        """Fig. 21's foundation: distribution does not change the numbers."""
        part = partition_octree(bbh_mesh.tree, ranks)
        c = bbh_mesh.coordinates()
        u = np.stack([np.sin(0.2 * c[..., 0]), c[..., 1] * c[..., 2] * 0.01])
        pd = distributed_unzip(bbh_mesh, part, u)
        pg = bbh_mesh.unzip(u)
        assert np.array_equal(pd, pg)

    def test_single_dof_field(self, bbh_mesh):
        part = partition_octree(bbh_mesh.tree, 2)
        c = bbh_mesh.coordinates()
        u = c[..., 0] ** 2
        pd = distributed_unzip(bbh_mesh, part, u)
        assert np.array_equal(pd, bbh_mesh.unzip(u))


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        mesh = Mesh(bbh_grid(mass_ratio=2.0, max_level=7, base_level=3))
        return ScalingStudy(mesh)

    def test_strong_scaling_trend(self, study):
        """Fig. 17: efficiency decreases with GPU count, staying above
        ~60% at 16 GPUs for 257M unknowns."""
        pts = study.strong_scaling(257e6, [2, 4, 8, 16])
        eff = efficiencies(pts, "strong")
        assert eff[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(eff, eff[1:]))
        assert 0.80 < eff[1] < 1.0  # 4 GPUs (paper 97%)
        assert 0.70 < eff[2] < 0.95  # 8 GPUs (paper 89%)
        assert 0.5 < eff[3] < 0.8  # 16 GPUs (paper 64%)

    def test_weak_scaling_trend(self, study):
        """Fig. 18: ~83% average efficiency at 35M unknowns/GPU."""
        pts = study.weak_scaling(35e6, [1, 2, 4, 8, 16])
        eff = efficiencies(pts, "weak")
        assert eff[0] == pytest.approx(1.0)
        assert 0.6 < np.mean(eff[1:]) < 1.0

    def test_times_scale_with_problem(self, study):
        small = study.point(10e6, 4)
        big = study.point(100e6, 4)
        assert big.total > 5 * small.total

    def test_breakdown_phases(self, study):
        phases = study.breakdown(500e3 * 56, 56)
        assert set(phases) >= {"rhs", "octant-to-patch", "patch-to-octant", "comm"}
        assert phases["rhs"] > phases["patch-to-octant"]
        assert all(v >= 0 for v in phases.values())

    def test_frontera_scale_does_not_crash(self, study):
        """Fig. 20 regime: thousands of ranks via the analytic surface
        fallback."""
        pts = study.weak_scaling(500e3 * 56, [56, 224, 896, 3584], steps=1)
        assert all(np.isfinite(p.total) and p.total > 0 for p in pts)

    def test_comm_zero_single_rank(self, study):
        assert study.comm_time(1e6, 1) == 0.0


class TestLoadBalance:
    @pytest.fixture(scope="class")
    def mesh(self):
        from repro.octree import bbh_grid

        return Mesh(bbh_grid(mass_ratio=2.0, max_level=6, base_level=2))

    def test_weights_positive_and_interface_heavier(self, mesh):
        from repro.mesh import CASE_COARSE
        from repro.parallel import octant_work_weights

        w = octant_work_weights(mesh)
        assert np.all(w > 0)
        # coarse sources (which prolong) cost more than the plain base
        coarse_src = np.unique(
            np.concatenate(
                [g.src for g in mesh.plan.groups if g.case == CASE_COARSE]
            )
        )
        rest = np.setdiff1d(np.arange(mesh.num_octants), coarse_src)
        assert w[coarse_src].mean() > w[rest].mean()

    def test_work_partition_improves_predicted_balance(self, mesh):
        from repro.octree import partition_octree
        from repro.parallel import (
            octant_work_weights,
            partition_by_work,
            predicted_imbalance,
        )

        w = octant_work_weights(mesh)
        naive = partition_octree(mesh.tree, 6)
        smart = partition_by_work(mesh, 6)
        assert predicted_imbalance(mesh, smart, w) <= predicted_imbalance(
            mesh, naive, w
        ) + 1e-9
        assert predicted_imbalance(mesh, smart, w) < 1.2

    def test_work_partition_still_complete(self, mesh):
        from repro.parallel import partition_by_work

        p = partition_by_work(mesh, 5)
        assert p.part_sizes().sum() == mesh.num_octants
