"""Tests for the hot-path workspace arena (repro.perf): buffer pooling,
per-phase profiling, in-place RK4, and pooled-vs-unpooled solver identity."""

import numpy as np
import pytest

from repro.bssn import Puncture
from repro.fd import PatchDerivatives, apply_stencil
from repro.fd.stencils import D1_CENTERED_6, KO_DISS_6
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.perf import PHASES, BufferPool, RK4Workspace, SolverWorkspace, StepProfiler
from repro.solver import BSSNSolver, WaveSolver, rk4_step


def small_mesh():
    return Mesh(LinearOctree.uniform(2, domain=Domain(-10.0, 10.0)))


class TestBufferPool:
    def test_same_key_returns_same_buffer(self):
        pool = BufferPool()
        a = pool.get("x", (4, 5))
        b = pool.get("x", (4, 5))
        assert a is b
        assert pool.hits == 1 and pool.misses == 1

    def test_shape_and_dtype_are_part_of_the_key(self):
        pool = BufferPool()
        a = pool.get("x", (4, 5))
        b = pool.get("x", (4, 6))
        c = pool.get("x", (4, 5), np.float32)
        assert a is not b and a is not c
        assert pool.num_buffers == 3

    def test_clear_and_nbytes(self):
        pool = BufferPool()
        pool.get("x", (10,))
        assert pool.nbytes == 80
        assert "x" in pool and "y" not in pool
        pool.clear()
        assert pool.num_buffers == 0 and pool.nbytes == 0


class TestStepProfiler:
    def test_disabled_is_noop(self):
        prof = StepProfiler(enabled=False)
        with prof.phase("deriv"):
            pass
        prof.begin_step()
        prof.end_step()
        assert prof.steps == 0
        assert all(v == 0.0 for v in prof.totals.values())
        # disabled phase() returns one shared no-op context manager
        assert prof.phase("unzip") is prof.phase("axpy")

    def test_records_all_phases(self):
        prof = StepProfiler()
        prof.begin_step()
        for p in PHASES:
            with prof.phase(p):
                sum(range(1000))
        prof.end_step()
        assert prof.steps == 1
        assert prof.step_time > 0.0
        assert all(prof.totals[p] > 0.0 for p in PHASES)
        s = prof.summary()
        assert abs(sum(ph["fraction"] for ph in s["phases"].values()) - 1.0) < 1e-12
        rep = prof.report()
        for p in PHASES:
            assert p in rep
        prof.reset()
        assert prof.steps == 0 and prof.totals["deriv"] == 0.0


class TestPooledRK4:
    def _rhs(self, u, t, out=None):
        if out is None:
            return np.cos(3.0 * u) + t
        np.cos(3.0 * u, out=out)
        out += t
        return out

    def test_bitwise_identical_to_plain_path(self):
        rng = np.random.default_rng(7)
        u0 = rng.normal(size=(3, 8, 8))
        plain = rk4_step(self._rhs, u0, 0.1, 0.03)
        work = RK4Workspace(u0.shape)
        pooled = rk4_step(self._rhs, u0, 0.1, 0.03, work=work)
        assert np.array_equal(plain, pooled)

    def test_ping_pong_buffers_reused_across_steps(self):
        rng = np.random.default_rng(8)
        u = rng.normal(size=(2, 6, 6))
        work = RK4Workspace(u.shape)
        seen = set()
        for i in range(4):
            u = rk4_step(self._rhs, u, 0.0, 0.01, work=work)
            assert any(u is b for b in work._out)
            seen.add(id(u))
        assert len(seen) == 2  # alternates between exactly two buffers

    def test_out_for_never_aliases_input(self):
        work = RK4Workspace((4,))
        for u in work._out:
            assert not np.shares_memory(work.out_for(u), u)


class TestFusedStencil:
    @pytest.mark.parametrize("direction", [0, 1, 2])
    def test_fused_matches_tap_loop(self, direction):
        rng = np.random.default_rng(11)
        u = rng.normal(size=(5, 13, 13, 13))
        axis = u.ndim - 1 - direction
        for st in (D1_CENTERED_6, KO_DISS_6):
            a = apply_stencil(u, st, 0.25, axis, fused=True)
            b = apply_stencil(u, st, 0.25, axis, fused=False)
            np.testing.assert_allclose(a, b, rtol=0, atol=1e-12 * max(1.0, np.abs(b).max()))

    def test_fused_out_buffer_returned(self):
        u = np.random.default_rng(12).normal(size=(2, 13, 13, 13))
        out = np.empty((2, 13, 13, 7))
        got = apply_stencil(u, D1_CENTERED_6, 0.5, 3, out=out)
        assert got is out


@pytest.fixture(scope="module")
def bssn_pair():
    """Unpooled and pooled BSSN solvers advanced two steps from identical
    puncture data on the same mesh."""
    mesh = small_mesh()
    punc = [Puncture(1.0, [0.0, 0.0, 0.0], momentum=[0.0, 0.05, 0.0])]
    prof = StepProfiler()
    a = BSSNSolver(mesh, pooled=False)
    b = BSSNSolver(mesh, pooled=True, profiler=prof)
    a.set_punctures(punc)
    b.set_punctures(punc)
    for _ in range(2):
        a.step()
        b.step()
    return {"a": a, "b": b, "prof": prof,
            "state_a": a.state.copy(), "state_b": b.state.copy()}


class TestBSSNPooled:
    def test_pooled_state_bitwise_equals_unpooled(self, bssn_pair):
        assert np.array_equal(bssn_pair["state_a"], bssn_pair["state_b"])

    def test_workspace_and_buffers_reused_across_steps(self, bssn_pair):
        b = bssn_pair["b"]
        ws = b._workspace
        assert isinstance(ws, SolverWorkspace)
        misses = ws.pool.misses
        patches_id = id(ws.pool.get("solver.patches",
                                    (24, b.mesh.num_octants, 13, 13, 13)))
        b.step()
        assert b._workspace is ws  # same arena
        assert ws.pool.misses == misses  # zero new pool allocations
        assert id(ws.pool.get("solver.patches",
                              (24, b.mesh.num_octants, 13, 13, 13))) == patches_id

    def test_state_lives_in_ping_pong_buffers(self, bssn_pair):
        b = bssn_pair["b"]
        rk4 = b._workspace._rk4
        assert any(np.may_share_memory(b.state, buf) for buf in rk4._out)

    def test_profiler_reports_all_six_phases(self, bssn_pair):
        prof = bssn_pair["prof"]
        assert prof.steps >= 2
        for p in PHASES:
            assert prof.totals[p] > 0.0, f"phase {p} never recorded"
        assert prof.step_time >= sum(prof.totals.values()) * 0.5


class TestWaveSolverPooled:
    def test_pooled_state_bitwise_equals_unpooled(self):
        mesh = small_mesh()
        rng = np.random.default_rng(5)
        init = rng.normal(size=(2, mesh.num_octants, 7, 7, 7))
        a = WaveSolver(mesh, pooled=False)
        b = WaveSolver(mesh, pooled=True)
        a.state = init.copy()
        b.state = init.copy()
        for _ in range(3):
            a.step()
            b.step()
        assert np.array_equal(a.state, b.state)

    def test_regrid_invalidates_workspace(self):
        mesh = small_mesh()
        s = WaveSolver(mesh, pooled=True)
        c = mesh.coordinates()
        s.state[0] = np.exp(-(c[..., 0] ** 2 + c[..., 1] ** 2 + c[..., 2] ** 2))
        s.step()
        ws_before = s._workspace
        assert ws_before is not None
        changed = s.regrid(1e-6, max_level=3)
        assert changed  # the bump must trigger refinement
        s.step()
        assert s._workspace is not ws_before  # arena rebuilt for new mesh
        assert s._workspace.mesh is s.mesh

    def test_unpooled_solver_never_builds_buffers(self):
        mesh = small_mesh()
        s = WaveSolver(mesh, pooled=False)
        s.step()
        ws = s._workspace
        assert ws is None or ws.pool.num_buffers == 0
