"""Tests for guarded stepping, durable checkpoints, and fault injection."""

import json

import numpy as np
import pytest

from repro.io import (
    CheckpointError,
    RunConfig,
    find_latest_valid,
    load_checkpoint,
    restore_solver,
    rotate_checkpoints,
    save_checkpoint,
    verify_checkpoint,
)
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.resilience import (
    EvolutionAborted,
    FaultInjector,
    HealthMonitor,
    RetryPolicy,
    RunJournal,
    SupervisedRun,
    det_gt_drift,
    read_journal,
    state_max_abs,
    summarize,
)
from repro.solver import WaveSolver


@pytest.fixture()
def small_config():
    return RunConfig(
        name="test",
        mass_ratio=1.0,
        domain_half_width=12.0,
        base_level=2,
        max_level=3,
        t_end=0.1,
        extraction_radii=[8.0],
    )


def _wave_solver(**kwargs):
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
    solver = WaveSolver(mesh, ko_sigma=0.05, **kwargs)
    rng = np.random.default_rng(42)
    solver.state = rng.normal(scale=0.01, size=solver.state.shape)
    return solver


class TestHealthScans:
    def test_state_max_abs(self):
        u = np.full((2, 3, 4), 0.5)
        u[1, 2, 3] = -7.0
        assert state_max_abs(u) == 7.0

    def test_state_max_abs_nan_propagates(self):
        u = np.ones((2, 8))
        u[0, 3] = np.nan
        assert np.isnan(state_max_abs(u))

    def test_det_drift_zero_on_identity(self, small_config):
        solver = small_config.build_solver()
        assert det_gt_drift(solver.state) < 1e-12

    def test_det_drift_detects_perturbation(self, small_config):
        from repro.bssn import state as S

        solver = small_config.build_solver()
        u = solver.state.copy()
        u[S.GT_SYM_SLICE][0] += 0.1  # push det(gt) off 1
        assert det_gt_drift(u) > 1e-3

    def test_pooled_matches_poolless(self, small_config):
        from repro.perf import BufferPool

        solver = small_config.build_solver()
        pool = BufferPool()
        assert det_gt_drift(solver.state, pool=pool) == det_gt_drift(
            solver.state
        )
        assert state_max_abs(solver.state, pool=pool) == state_max_abs(
            solver.state
        )


class TestHealthMonitor:
    def test_clean_bssn_state_passes(self, small_config):
        solver = small_config.build_solver()
        report = HealthMonitor().scan(solver.state)
        assert report.ok
        assert "max-abs" in report.values
        assert "det-drift" in report.values

    def test_nan_fails(self, small_config):
        solver = small_config.build_solver()
        solver.state[3, 0, 0, 0, 0] = np.nan
        report = HealthMonitor().scan(solver.state)
        assert not report.ok
        assert "nonfinite" in report.failures

    def test_blowup_threshold(self):
        u = np.full((2, 4), 1e9)
        report = HealthMonitor(max_abs=1e8).scan(u)
        assert not report.ok
        assert "det-drift" not in report.values  # not a BSSN state

    def test_det_drift_fails(self, small_config):
        from repro.bssn import state as S

        solver = small_config.build_solver()
        solver.state[S.GT_SYM_SLICE][0] += 0.1
        report = HealthMonitor().scan(solver.state)
        assert not report.ok
        assert report.failures == ["det-drift"]

    def test_list_of_rank_states(self):
        clean = [np.ones((2, 4)), np.ones((2, 4))]
        assert HealthMonitor().scan(clean).ok
        clean[1][0, 0] = np.inf
        assert not HealthMonitor().scan(clean).ok

    def test_constraint_cadence(self, small_config):
        solver = small_config.build_solver()
        mon = HealthMonitor(constraint_every=1, ham_limit=1e-12)
        report = mon.scan(solver.state, step=1, solver=solver)
        assert not report.ok
        assert "ham-limit" in report.failures


class TestRunJournal:
    def test_event_sequence_and_counts(self):
        j = RunJournal()
        j.event("rollback", step=3)
        j.event("rollback", step=4)
        j.event("checkpoint", path="x")
        assert j.count("rollback") == 2
        assert [e["seq"] for e in j.events] == [0, 1, 2]

    def test_jsonl_round_trip(self, tmp_path):
        p = tmp_path / "run.jsonl"
        with RunJournal(p) as j:
            j.event("rollback", reasons=["nonfinite"],
                    value=np.float64(3.5), arr=np.arange(3))
        events = read_journal(p)
        assert events[0]["value"] == 3.5
        assert events[0]["arr"] == [0, 1, 2]

    def test_torn_final_line_tolerated(self, tmp_path):
        p = tmp_path / "run.jsonl"
        with RunJournal(p) as j:
            j.event("a")
            j.event("b")
        with open(p, "a") as fh:
            fh.write('{"seq": 2, "kind": "torn-by-cra')
        with pytest.warns(UserWarning, match="torn final line"):
            events = read_journal(p)
        assert [e["kind"] for e in events] == ["a", "b"]

    def test_torn_middle_line_raises(self, tmp_path):
        p = tmp_path / "run.jsonl"
        p.write_text('{"broken\n{"seq": 0, "kind": "ok"}\n')
        with pytest.raises(json.JSONDecodeError):
            read_journal(p)

    def test_summarize(self):
        j = RunJournal()
        j.event("rollback")
        j.event("halo-retry")
        j.event("abort", reason="x")
        s = summarize(j.events)
        assert s["rollbacks"] == 1
        assert s["halo_retries"] == 1
        assert s["aborted"]


class TestFaultInjector:
    def test_fires_once_per_scheduled_step(self):
        inj = FaultInjector(seed=1, nan_burst_steps=(3,))
        u = np.zeros((4, 5, 5))
        assert inj.maybe_corrupt(u, 2) is None
        event = inj.maybe_corrupt(u, 3)
        assert event["fault"] == "nan-burst"
        assert np.isnan(u).any()
        u2 = np.zeros((4, 5, 5))
        assert inj.maybe_corrupt(u2, 3) is None  # each burst fires once

    def test_deterministic_replay(self):
        logs = []
        for _ in range(2):
            inj = FaultInjector(seed=9, nan_burst_steps=(1, 2))
            u = np.zeros((6, 10, 10))
            inj.maybe_corrupt(u, 1)
            inj.maybe_corrupt(u, 2)
            logs.append(inj.log)
        assert logs[0] == logs[1]


class TestSupervisedRun:
    def test_clean_run_matches_unsupervised(self):
        a, b = _wave_solver(), _wave_solver()
        run = SupervisedRun(a, monitor=HealthMonitor())
        for _ in range(3):
            run.step()
            b.step()
        assert np.array_equal(a.state, b.state)
        assert run.rollbacks == 0

    def test_nan_burst_rollback_and_recovery(self, small_config):
        solver = small_config.build_solver()
        injector = FaultInjector(seed=3, nan_burst_steps=(2,))
        journal = RunJournal()
        run = SupervisedRun(solver, journal=journal, injector=injector,
                            monitor=HealthMonitor())
        for _ in range(4):
            run.step()
        assert run.rollbacks >= 1
        assert np.all(np.isfinite(solver.state))
        assert journal.count("fault-injected") == 1
        assert journal.count("rollback") == run.rollbacks
        # the retry ran at reduced dt
        assert solver.courant < 0.25

    def test_matches_clean_lower_dt_run(self, small_config):
        solver = small_config.build_solver()
        run = SupervisedRun(
            solver, monitor=HealthMonitor(),
            injector=FaultInjector(seed=3, nan_burst_steps=(1,)),
        )
        for _ in range(3):
            run.step()
        ref = small_config.build_solver()
        ref.courant *= 0.5
        while ref.t < solver.t - 1e-12:
            ref.step()
        scale = float(np.max(np.abs(ref.state)))
        assert np.max(np.abs(ref.state - solver.state)) / scale < 1e-3

    def test_degrade_abort(self):
        solver = _wave_solver()
        run = SupervisedRun(
            solver,
            monitor=HealthMonitor(max_abs=1e-12),  # everything fails
            policy=RetryPolicy(max_retries=1, degrade="abort"),
        )
        with pytest.raises(EvolutionAborted) as err:
            run.step()
        assert err.value.report["rollbacks"] == 2
        assert "max-abs" in err.value.report["reason"]

    def test_degrade_flag_accepts_step(self):
        solver = _wave_solver()
        journal = RunJournal()
        run = SupervisedRun(
            solver,
            monitor=HealthMonitor(max_abs=1e-12),
            policy=RetryPolicy(max_retries=1, degrade="flag"),
            journal=journal,
        )
        run.step()
        assert run.flagged_steps == [1]
        assert solver.step_count == 1
        assert journal.count("flagged-step") == 1

    def test_min_courant_floor_aborts(self):
        solver = _wave_solver()
        run = SupervisedRun(
            solver,
            monitor=HealthMonitor(max_abs=1e-12),
            policy=RetryPolicy(max_retries=100,
                               min_courant_factor=2.0**-3),
        )
        with pytest.raises(EvolutionAborted) as err:
            run.step()
        assert "floor" in err.value.report["reason"]

    def test_healing_restores_dt(self):
        solver = _wave_solver()
        run = SupervisedRun(solver, monitor=HealthMonitor(),
                            policy=RetryPolicy(heal_after=2))
        base = solver.courant
        solver.courant = base * 0.25  # as if two rollbacks happened
        run._base_courant = base
        for _ in range(5):
            run.step()
        assert solver.courant == base  # healed in two doublings
        assert run.journal.count("dt-restored") == 2

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(degrade="panic")
        with pytest.raises(ValueError):
            RetryPolicy(dt_factor=1.5)

    def test_checkpoint_cadence_and_rotation(self, tmp_path):
        solver = _wave_solver()
        run = SupervisedRun(solver, monitor=HealthMonitor(),
                            checkpoint_dir=tmp_path, checkpoint_every=1,
                            keep=2)
        for _ in range(4):
            run.step()
            run.write_checkpoint()
        files = sorted(tmp_path.glob("chk_*.npz"))
        assert [f.name for f in files] == ["chk_00000003.npz",
                                           "chk_00000004.npz"]


class TestCheckpointV2:
    def test_meta_carries_params_and_digest(self, small_config, tmp_path):
        solver = small_config.build_solver()
        solver.step()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        _, _, meta = load_checkpoint(p)
        assert meta["version"] == 2
        assert meta["params"]["eta"] == solver.params.eta
        assert len(meta["sha256"]) == 64

    def test_punctures_round_trip(self, small_config, tmp_path):
        from repro.solver import PunctureTracker

        solver = small_config.build_solver()
        solver.step()
        solver.tracker = PunctureTracker(
            [[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]], masses=[0.5, 0.5]
        )
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        restored = restore_solver(p)
        assert restored.tracker.num_punctures == 2
        assert np.allclose(restored.tracker.positions[0], [1.0, 0.0, 0.0])
        assert restored.tracker.masses == [0.5, 0.5]
        # params came from the file, not defaults
        assert restored.params == solver.params

    def test_bit_flip_detected(self, small_config, tmp_path):
        solver = small_config.build_solver()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        blob = bytearray(p.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        p.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(p)

    def test_truncation_detected(self, small_config, tmp_path):
        solver = small_config.build_solver()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        p.write_bytes(p.read_bytes()[:256])
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(p)

    def test_atomic_write_crash_leaves_no_litter(self, small_config,
                                                 tmp_path, monkeypatch):
        import os as _os

        solver = small_config.build_solver()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)  # pre-existing good checkpoint
        good = p.read_bytes()

        solver.step()

        def crash(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(_os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_checkpoint(p, solver)
        monkeypatch.undo()
        # the old checkpoint is untouched and no temp files remain
        assert p.read_bytes() == good
        assert list(tmp_path.glob("*.tmp.*")) == []
        load_checkpoint(p)

    def test_v1_migration(self, small_config, tmp_path):
        solver = small_config.build_solver()
        solver.step()
        tree = solver.mesh.tree
        meta = {
            "version": 1,
            "t": solver.t,
            "step_count": solver.step_count,
            "courant": solver.courant,
            "r": solver.mesh.r,
            "k": solver.mesh.k,
            "domain": [tree.domain.xmin, tree.domain.xmax],
        }
        p = tmp_path / "old.npz"
        np.savez_compressed(
            p,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            x=tree.octants.x, y=tree.octants.y, z=tree.octants.z,
            level=tree.octants.level, state=solver.state,
        )
        _, state, loaded = load_checkpoint(p)
        assert loaded["version"] == 2
        assert loaded["migrated_from"] == 1
        assert loaded["sha256"] is None
        assert np.array_equal(state, solver.state)
        with pytest.warns(UserWarning, match="default BSSNParams"):
            restored = restore_solver(p)
        assert restored.t == pytest.approx(solver.t)

    def test_unsupported_version_rejected(self, small_config, tmp_path):
        solver = small_config.build_solver()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        with np.load(p) as data:
            arrays = {k: np.array(data[k])
                      for k in ("x", "y", "z", "level", "state")}
            meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        np.savez_compressed(
            p, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        with pytest.raises(CheckpointError, match="version 99"):
            load_checkpoint(p)

    def test_unbalanced_octree_rejected(self, tmp_path):
        from repro.octree.keys import LATTICE

        c = np.array([int(LATTICE) // 2], dtype=np.uint64)
        t = LinearOctree.uniform(1)
        for _ in range(4):  # point refinement: maximally unbalanced
            flags = np.zeros(len(t), dtype=bool)
            flags[t.locate(c, c, c)[0]] = True
            t = t.refine(flags)
        meta = {"version": 1, "t": 0.0, "step_count": 0, "courant": 0.25,
                "r": 7, "k": 2,
                "domain": [t.domain.xmin, t.domain.xmax]}
        p = tmp_path / "stale.npz"
        np.savez_compressed(
            p, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            x=t.octants.x, y=t.octants.y, z=t.octants.z,
            level=t.octants.level,
            state=np.zeros((24, len(t), 7, 7, 7)),
        )
        with pytest.raises(CheckpointError, match="not 2:1 balanced"):
            load_checkpoint(p)
        assert verify_checkpoint(p)["valid"] is False

    def test_rotation(self, small_config, tmp_path):
        solver = small_config.build_solver()
        for i in range(1, 5):
            save_checkpoint(tmp_path / f"chk_{i:08d}.npz", solver)
        removed = rotate_checkpoints(tmp_path, keep=2)
        assert len(removed) == 2
        names = sorted(f.name for f in tmp_path.glob("chk_*.npz"))
        assert names == ["chk_00000003.npz", "chk_00000004.npz"]
        with pytest.raises(ValueError):
            rotate_checkpoints(tmp_path, keep=0)

    def test_save_with_keep_rotates(self, small_config, tmp_path):
        solver = small_config.build_solver()
        for i in range(1, 4):
            save_checkpoint(tmp_path / f"chk_{i:08d}.npz", solver, keep=2)
        assert len(list(tmp_path.glob("chk_*.npz"))) == 2


class TestAutoResume:
    def _three_checkpoints(self, small_config, tmp_path):
        solver = small_config.build_solver()
        paths = []
        for _ in range(3):
            solver.step()
            p = tmp_path / f"chk_{solver.step_count:08d}.npz"
            save_checkpoint(p, solver)
            paths.append(p)
        return solver, paths

    def test_find_latest_valid_skips_corrupt(self, small_config, tmp_path):
        _, paths = self._three_checkpoints(small_config, tmp_path)
        # newest truncated, second-newest bit-flipped
        paths[2].write_bytes(paths[2].read_bytes()[:200])
        blob = bytearray(paths[1].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        paths[1].write_bytes(bytes(blob))
        with pytest.warns(UserWarning, match="skipping invalid"):
            best = find_latest_valid(tmp_path)
        assert best == paths[0]

    def test_find_latest_valid_prefers_newest(self, small_config, tmp_path):
        _, paths = self._three_checkpoints(small_config, tmp_path)
        assert find_latest_valid(tmp_path) == paths[2]

    def test_find_latest_valid_empty(self, tmp_path):
        assert find_latest_valid(tmp_path) is None
        assert find_latest_valid(tmp_path / "missing") is None

    def test_resume_continues_run(self, small_config, tmp_path):
        solver, paths = self._three_checkpoints(small_config, tmp_path)
        run = SupervisedRun.resume(tmp_path, monitor=HealthMonitor())
        assert run.solver.step_count == 3
        assert run.journal.count("resume") == 1
        run.step()
        solver.step()
        assert np.allclose(run.solver.state, solver.state, atol=1e-14)

    def test_resume_without_checkpoints_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SupervisedRun.resume(tmp_path)


class TestIOCLI:
    def test_checkpoint_verify_and_info(self, small_config, tmp_path,
                                        capsys):
        from repro.io.cli import io_main

        solver = small_config.build_solver()
        solver.step()
        p = tmp_path / "chk.npz"
        save_checkpoint(p, solver)
        assert io_main(["checkpoint-verify", str(p)]) == 0
        assert "VALID" in capsys.readouterr().out
        assert io_main(["checkpoint-info", str(p)]) == 0
        out = capsys.readouterr().out
        assert "sha256" in out and "params" in out

        p.write_bytes(p.read_bytes()[:100])
        assert io_main(["checkpoint-verify", str(p)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_find_latest_cli(self, small_config, tmp_path, capsys):
        from repro.io.cli import io_main

        assert io_main(["find-latest", str(tmp_path)]) == 1
        solver = small_config.build_solver()
        p = tmp_path / "chk_00000001.npz"
        save_checkpoint(p, solver)
        assert io_main(["find-latest", str(tmp_path)]) == 0
        assert str(p) in capsys.readouterr().out
