"""Tests for comm failure semantics: timeouts, retries, fault injection,
resilient halo exchange, and rank-death recovery."""

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree, partition_octree
from repro.parallel import (
    DistributedWaveSolver,
    HaloExchangeError,
    MessageTimeout,
    RankDeadError,
    SimComm,
    build_halo_plan,
    exchange_ghosts,
)
from repro.resilience import (
    FaultyComm,
    HealthMonitor,
    RunJournal,
    SupervisedRun,
)


def _partitioned_mesh(nranks=3):
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))
    part = partition_octree(mesh.tree, nranks)
    return mesh, part


def _wave_pair(comm=None, nranks=3):
    mesh, part = _partitioned_mesh(nranks)
    rng = np.random.default_rng(7)
    u0 = rng.normal(scale=0.01, size=(2, mesh.num_octants, 7, 7, 7))
    clean = DistributedWaveSolver(mesh, part, ko_sigma=0.05)
    clean.set_state(u0)
    faulty = DistributedWaveSolver(mesh, part, ko_sigma=0.05, comm=comm)
    faulty.set_state(u0)
    return faulty, clean


class TestSimCommEdgeCases:
    def test_empty_queue_times_out(self):
        comm = SimComm(2)
        with pytest.raises(MessageTimeout):
            comm.rank(0).recv(1)
        # MessageTimeout must remain a RuntimeError (legacy contract)
        with pytest.raises(RuntimeError):
            comm.rank(0).recv(1)

    def test_out_of_range_ranks(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.rank(5)
        with pytest.raises(ValueError):
            comm.rank(-1)
        with pytest.raises(ValueError):
            comm.rank(0).send(7, np.zeros(3))
        with pytest.raises(ValueError):
            comm.rank(0).recv(7)

    def test_fifo_order_and_pending(self):
        comm = SimComm(2)
        ep = comm.rank(0)
        ep.send(1, np.array([1.0]))
        ep.send(1, np.array([2.0]))
        assert comm.pending(0, 1) == 2
        assert comm.rank(1).recv(0)[0] == 1.0
        assert comm.rank(1).recv(0)[0] == 2.0
        assert comm.pending(0, 1) == 0

    def test_edge_seq_monotone_per_edge(self):
        comm = SimComm(3)
        assert comm.edge_seq(0, 1) == 0
        comm.rank(0).send(1, np.zeros(2))
        comm.rank(0).send(1, np.zeros(2))
        comm.rank(0).send(2, np.zeros(2))
        assert comm.edge_seq(0, 1) == 2
        assert comm.edge_seq(0, 2) == 1
        seq, _ = comm.rank(1).recv_tagged(0)
        assert seq == 1

    def test_payloads_are_copied(self):
        comm = SimComm(2)
        payload = np.ones(4)
        comm.rank(0).send(1, payload)
        payload[:] = -1.0
        assert np.all(comm.rank(1).recv(0) == 1.0)

    def test_drain_discards_in_flight(self):
        comm = SimComm(2)
        comm.rank(0).send(1, np.zeros(2))
        comm.drain()
        assert comm.pending(0, 1) == 0
        # sequence numbers survive a drain (stale msgs stay detectable)
        assert comm.edge_seq(0, 1) == 1

    def test_retry_accounting_on_timeout(self):
        comm = SimComm(2)
        with pytest.raises(MessageTimeout):
            comm.rank(1).recv(0, retries=3)
        assert comm.recv_retries[1] == 3
        assert comm.recv_retries[0] == 0

    def test_byte_accounting(self):
        comm = SimComm(2)
        comm.rank(0).send(1, np.zeros(10))  # 80 bytes
        comm.rank(1).send(0, np.zeros(5))   # 40 bytes
        assert comm.bytes_sent[0] == 80
        assert comm.bytes_sent[1] == 40
        assert comm.total_bytes() == 120
        assert list(comm.messages_sent) == [1, 1]


class TestFaultyComm:
    def test_deterministic_replay(self):
        logs = []
        for _ in range(2):
            comm = FaultyComm(2, seed=13, drop_prob=0.3, corrupt_prob=0.2,
                              delay_prob=0.2)
            for i in range(30):
                comm.rank(0).send(1, np.full(4, float(i)))
            logs.append(list(comm.log))
        assert logs[0] == logs[1]
        assert len(logs[0]) > 0

    def test_drop_counts_bytes_but_never_delivers(self):
        comm = FaultyComm(2, seed=0, drop_prob=1.0)
        comm.rank(0).send(1, np.zeros(10))
        assert comm.bytes_sent[0] == 80
        assert comm.pending(0, 1) == 0
        assert comm.edge_seq(0, 1) == 1  # lost packet consumed its seq

    def test_corrupt_injects_nan(self):
        comm = FaultyComm(2, seed=0, corrupt_prob=1.0)
        original = np.ones(64)
        comm.rank(0).send(1, original)
        got = comm.rank(1).recv(0)
        assert np.isnan(got).any()
        assert np.all(original == 1.0)  # sender's buffer untouched

    def test_delayed_message_arrives_after_retries(self):
        comm = FaultyComm(2, seed=0, delay_prob=1.0, max_delay=2)
        comm.rank(0).send(1, np.full(3, 5.0))
        assert comm.bytes_sent[0] == 24  # counted when sent
        # arrives only after max_delay recv attempts on the edge
        got = comm.rank(1).recv(0, retries=comm.max_delay)
        assert np.all(got == 5.0)
        assert comm.recv_retries[1] > 0

    def test_kill_rank_raises_then_revives(self):
        comm = FaultyComm(2, seed=0)
        comm.kill_rank(0, dead_for=2)
        assert comm.dead_ranks() == {0}
        comm.rank(0).send(1, np.ones(2))  # lost: sender is dead
        assert comm.pending(0, 1) == 0
        for _ in range(2):
            with pytest.raises(RankDeadError):
                comm.rank(1).recv(0)
        # auto-revived: delivery works again
        assert comm.dead_ranks() == set()
        comm.rank(0).send(1, np.full(2, 3.0))
        assert np.all(comm.rank(1).recv(0) == 3.0)

    def test_kill_rank_validates_range(self):
        with pytest.raises(ValueError):
            FaultyComm(2, seed=0).kill_rank(9)

    def test_drain_clears_delayed(self):
        comm = FaultyComm(2, seed=0, delay_prob=1.0)
        comm.rank(0).send(1, np.ones(2))
        comm.drain()
        with pytest.raises(MessageTimeout):
            comm.rank(1).recv(0, retries=5)


class TestResilientHaloExchange:
    def test_clean_traffic_identical_with_and_without_guards(self):
        mesh, part = _partitioned_mesh()
        plan = build_halo_plan(mesh, part)
        u = np.random.default_rng(0).normal(
            size=(2, mesh.num_octants, 7, 7, 7)
        )
        locals_ = [u[:, part.offsets[r]: part.offsets[r + 1]]
                   for r in range(part.num_parts)]
        c1, c2 = SimComm(part.num_parts), SimComm(part.num_parts)
        g1 = exchange_ghosts(plan, locals_, c1, dof=2)
        g2 = exchange_ghosts(plan, locals_, c2, dof=2,
                             max_retries=2, validate=True)
        assert list(c1.bytes_sent) == list(c2.bytes_sent)
        assert list(c1.messages_sent) == list(c2.messages_sent)
        for a, b in zip(g1, g2):
            assert a.keys() == b.keys()
            for key in a:
                assert np.array_equal(a[key], b[key])

    def test_dropped_halo_recovered_bitwise(self):
        comm = FaultyComm(3, seed=11, drop_prob=0.02)
        faulty, clean = _wave_pair(comm)
        journal = RunJournal()
        faulty.journal = journal
        for _ in range(3):
            clean.step()
            faulty.step()
        drops = sum(1 for e in comm.log if e["fault"] == "drop")
        assert drops > 0
        assert journal.count("halo-retry") >= 1
        assert np.array_equal(faulty.gather_state(), clean.gather_state())
        # retransmissions cost extra traffic over the clean run
        assert faulty.bytes_communicated() > clean.bytes_communicated()

    def test_corrupted_halo_detected_and_resent(self):
        comm = FaultyComm(3, seed=2, corrupt_prob=0.05)
        faulty, clean = _wave_pair(comm)
        journal = RunJournal()
        faulty.journal = journal
        for _ in range(3):
            clean.step()
            faulty.step()
        corrupts = sum(1 for e in comm.log if e["fault"] == "corrupt")
        assert corrupts > 0
        retries = [e for e in journal.events if e["kind"] == "halo-retry"]
        assert any(e["reason"] == "corrupt" for e in retries)
        assert np.array_equal(faulty.gather_state(), clean.gather_state())

    def test_budget_exhaustion_raises(self):
        comm = FaultyComm(3, seed=0, drop_prob=1.0)
        faulty, _ = _wave_pair(comm)
        with pytest.raises(HaloExchangeError):
            faulty.step()

    def test_non_resilient_path_unchanged(self):
        comm = FaultyComm(3, seed=0, drop_prob=1.0)
        faulty, _ = _wave_pair(comm)
        faulty.halo_retries = 0
        with pytest.raises(MessageTimeout):
            faulty.step()


class TestDeadRankRecovery:
    def test_supervised_run_survives_rank_death(self):
        comm = FaultyComm(3, seed=5)
        faulty, clean = _wave_pair(comm)
        journal = RunJournal()
        faulty.journal = journal
        run = SupervisedRun(faulty, journal=journal,
                            monitor=HealthMonitor())
        clean.step()
        run.step()
        comm.kill_rank(1, dead_for=2)
        clean.step()
        run.step()  # fails twice, rank revives, third attempt succeeds
        clean.step()
        run.step()
        assert run.rollbacks >= 1
        # transient failure: dt was NOT reduced
        assert faulty.courant == clean.courant
        assert np.array_equal(faulty.gather_state(), clean.gather_state())
        rollback_events = [e for e in journal.events
                           if e["kind"] == "rollback"]
        assert any("RankDeadError" in r for e in rollback_events
                   for r in e["reasons"])

    def test_unsupervised_rank_death_propagates(self):
        comm = FaultyComm(3, seed=5)
        faulty, _ = _wave_pair(comm)
        comm.kill_rank(1, dead_for=99)
        with pytest.raises(RankDeadError):
            faulty.step()
