"""Tests for the asyncio serve front: hot set, coalescing, tickets.

No pytest-asyncio in the toolchain — each test drives its own event
loop with ``asyncio.run``.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.analysis.catalog import build_model_catalog
from repro.jobs.worker import worker_loop
from repro.serve import (
    AsyncServeClient,
    CatalogStore,
    ServeError,
    ServeFront,
    SimulationBroker,
)
from repro.serve.fallback import PRODUCTION_TEMPLATE
from repro.serve.front import HotSet
from repro.serve.loadgen import build_requests
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def model_catalog():
    return build_model_catalog((1.0, 2.0, 4.0), samples=512,
                               duration=200.0)


@pytest.fixture
def store(tmp_path, model_catalog):
    s = CatalogStore(tmp_path / "store")
    s.ingest_model_catalog(model_catalog)
    return s


def run_front(store, coro_fn, **front_kwargs):
    """Start a front, run ``coro_fn(front, client)``, tear down."""

    async def main():
        front = ServeFront(store, **front_kwargs)
        host, port = await front.start()
        client = AsyncServeClient((host, port))
        try:
            return await coro_fn(front, client)
        finally:
            await client.close()
            await front.stop()

    return asyncio.run(main())


class TestHotSet:
    def test_lru_eviction_by_bytes(self):
        metrics = MetricsRegistry()
        hot = HotSet(3 * 8 * 4, metrics)  # room for ~3 tiny entries
        arr = lambda: {"x": np.zeros(4)}  # noqa: E731 — 32 bytes each
        for k in "abcd":
            hot.put(k, arr())
        assert hot.get("a") is None  # oldest evicted
        assert hot.get("d") is not None
        assert metrics.counter("serve_hot_evictions").value == 1

    def test_get_refreshes_recency(self):
        hot = HotSet(2 * 32, MetricsRegistry())
        hot.put("a", {"x": np.zeros(4)})
        hot.put("b", {"x": np.zeros(4)})
        assert hot.get("a") is not None  # a is now most recent
        hot.put("c", {"x": np.zeros(4)})  # evicts b, not a
        assert hot.get("a") is not None
        assert hot.get("b") is None

    def test_hit_ratio(self):
        hot = HotSet(1024, MetricsRegistry())
        hot.put("a", {"x": np.zeros(4)})
        hot.get("a")
        hot.get("missing")
        assert hot.hit_ratio == pytest.approx(0.5)


class TestQueries:
    def test_exact_and_hot_set(self, store):
        async def scenario(front, client):
            r1 = await client.query(2.0, max_samples=32)
            assert r1["outcome"] == "exact"
            assert r1["mismatch_bound"] == 0.0
            assert len(r1["times"]) <= 32
            assert np.all(np.isfinite(r1["h_re"]))
            hits0 = front.metrics.counter("serve_hot_hits").value
            r2 = await client.query(2.0, max_samples=32)
            assert r2["entry"]["key"] == r1["entry"]["key"]
            assert front.metrics.counter("serve_hot_hits").value > hits0
            assert front.metrics.counter("serve_decodes").value == 1

        run_front(store, scenario)

    def test_interp_reports_bound_and_bracket(self, store):
        async def scenario(front, client):
            r = await client.query(1.5, max_samples=32)
            assert r["outcome"] == "interp"
            assert 0.0 < r["mismatch_bound"] <= store.max_interp_mismatch
            assert r["entry"]["interpolated"] is True
            assert len(r["entry"]["keys"]) == 2
            return r

        run_front(store, scenario)

    def test_detector_postprocessing(self, store):
        async def scenario(front, client):
            r = await client.query(1.0, detector="ce", max_samples=32)
            s = r["strain"]
            assert s["detector"] == "ce"
            assert s["snr"] > 0.0 and np.isfinite(s["snr"])
            assert np.all(np.isfinite(s["strain"]))
            with pytest.raises(ServeError, match="unknown detector"):
                await client.query(1.0, detector="lisa")

        run_front(store, scenario)

    def test_coalescing_single_decode(self, store):
        async def scenario(front, client):
            reqs = [{"op": "query", "mass_ratio": 4.0,
                     "max_samples": 16} for _ in range(8)]
            resps = await asyncio.gather(*(front.handle(dict(r))
                                           for r in reqs))
            assert all(r["ok"] and r["outcome"] == "exact"
                       for r in resps)
            assert front.metrics.counter("serve_decodes").value == 1
            assert front.metrics.counter("serve_coalesced").value == 7

        run_front(store, scenario)

    def test_errors_are_responses_not_disconnects(self, store):
        async def scenario(front, client):
            bad = await client.request({"op": "query"})  # no mass_ratio
            assert bad["ok"] is False and "mass_ratio" in bad["error"]
            unknown = await client.request({"op": "launch_missiles"})
            assert unknown["ok"] is False
            # the connection survives both
            assert (await client.request({"op": "ping"}))["ok"]
            err = front.metrics.counter("serve_requests",
                                        outcome="error").value
            assert err == 1  # unknown op is a clean refusal, not an error

        run_front(store, scenario)

    def test_stats_and_token_echo(self, store):
        async def scenario(front, client):
            await client.query(1.0, max_samples=8)
            r = await client.request({"op": "stats", "token": "t-17"})
            assert r["token"] == "t-17"
            assert r["store"]["entries"] == 3
            assert r["hot_set"]["entries"] == 1

        run_front(store, scenario)


def tiny_template():
    cfg = dataclasses.replace(
        PRODUCTION_TEMPLATE, domain_half_width=4.0, base_level=1,
        max_level=2, t_end=2.0, extraction_radii=[2.0], extract_every=2)
    return cfg


class TestMissFallback:
    def test_miss_without_broker_has_no_ticket(self, store):
        async def scenario(front, client):
            r = await client.query(40.0)
            assert r["outcome"] == "miss" and r["ticket"] is None

        run_front(store, scenario)

    def test_miss_opens_coalesced_ticket(self, store, tmp_path):
        broker = SimulationBroker(tmp_path / "campaign",
                                  template=tiny_template())

        async def scenario(front, client):
            r1 = await client.query(40.0)
            r2 = await client.query(40.0)
            assert r1["ticket"]["id"] == r2["ticket"]["id"]
            status = await client.request({"op": "ticket",
                                           "id": r1["ticket"]["id"]})
            assert status["ok"] and status["known"]
            assert status["state"] == "pending"
            assert not status["ingested"]
            opened = front.metrics.counter("serve_tickets",
                                           state="opened").value
            assert opened == 1

        run_front(store, scenario, broker=broker)

    def test_full_loop_miss_to_served(self, store, tmp_path):
        """miss -> ticket -> worker drains the job -> ingest -> hit."""
        broker = SimulationBroker(tmp_path / "campaign",
                                  template=tiny_template())

        async def scenario(front, client):
            miss = await client.query(5.5, max_samples=16)
            assert miss["outcome"] == "miss"
            ticket = miss["ticket"]
            await asyncio.to_thread(worker_loop,
                                    str(tmp_path / "campaign"), "w0")
            report = await front.ingest()
            assert report["ingested"] == 1
            status = await client.request({"op": "ticket",
                                           "id": ticket["id"]})
            assert status["state"] == "done" and status["ingested"]
            hit = await client.query(5.5, max_samples=16)
            assert hit["outcome"] == "exact"
            assert hit["entry"]["source"].startswith("cache:")
            assert np.any(np.abs(hit["h_re"]) > 0.0)

        run_front(store, scenario, broker=broker)


class TestLoadgen:
    def test_build_requests_deterministic_mix(self):
        a = build_requests(100, hot_qs=[1.0], interp_qs=[1.5],
                           miss_qs=[9.0], seed=3)
        b = build_requests(100, hot_qs=[1.0], interp_qs=[1.5],
                           miss_qs=[9.0], seed=3)
        assert a == b
        kinds = [r["_kind"] for r in a]
        assert kinds.count("hot") > kinds.count("miss")
        assert all(r["op"] == "query" for r in a)
        assert {r["_kind"] for r in a} <= {"hot", "interp", "detector",
                                           "miss"}
