"""Tests for the serve subsystem's CatalogStore (index + query plans)."""

import numpy as np
import pytest

from repro.analysis.catalog import build_model_catalog
from repro.jobs.cache import ResultCache
from repro.serve.store import CatalogStore, StoreError


@pytest.fixture(scope="module")
def model_catalog():
    return build_model_catalog((1.0, 2.0, 4.0), samples=512,
                               duration=200.0)


@pytest.fixture
def store(tmp_path, model_catalog):
    s = CatalogStore(tmp_path / "store")
    s.ingest_model_catalog(model_catalog)
    return s


class TestIngest:
    def test_model_catalog(self, store):
        assert len(store) == 3
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["families"] == 1
        assert stats["q_min"] == 1.0 and stats["q_max"] == 4.0
        assert stats["bytes"] > 0

    def test_idempotent(self, store, model_catalog):
        keys1 = store.ingest_model_catalog(model_catalog)
        keys2 = store.ingest_model_catalog(model_catalog)
        assert keys1 == keys2
        assert len(store) == 3

    def test_persists_across_instances(self, store, tmp_path):
        again = CatalogStore(store.root)
        assert len(again) == 3
        assert again.query_plan(2.0)["outcome"] == "exact"

    def test_rejects_bad_waveforms(self, store):
        with pytest.raises(StoreError):
            store.add_waveform(3.0, [0.0], [1.0 + 0j], source="x")
        with pytest.raises(StoreError):
            store.add_waveform(3.0, [0.0, 1.0], [np.nan, 1.0 + 0j],
                               source="x")

    def test_cache_ingest_skips_arrayless(self, tmp_path, store):
        cache = ResultCache(tmp_path / "cache")
        t = np.linspace(0.0, 1.0, 32)
        h = np.exp(1j * t)
        cache.put("a" * 64, {"physics": {"mass_ratio": 3.0,
                                         "extraction_radii": [2.0],
                                         "max_level": 2}},
                  arrays={"times": t, "h22_r2": h})
        cache.put("b" * 64, {"physics": {"mass_ratio": 5.0,
                                         "extraction_radii": [2.0]}})
        cache.put("c" * 64, {"no_physics": True})
        report = store.ingest_cache(cache)
        assert report["ingested"] == 1
        assert report["skipped"] == 2
        # second scan: already indexed, nothing new
        again = store.ingest_cache(cache)
        assert again["ingested"] == 0
        assert again["already"] == 1


class TestReadPath:
    def test_load_arrays_roundtrip(self, store, model_catalog):
        plan = store.query_plan(2.0)
        arrays = store.load_arrays(plan["key"])
        ref = model_catalog.entry(2.0)
        assert np.allclose(arrays["times"], ref.times)
        assert np.allclose(arrays["h22"], ref.h22)

    def test_unknown_key(self, store):
        with pytest.raises(StoreError):
            store.load_arrays("nope")
        with pytest.raises(StoreError):
            store.entry_meta("nope")

    def test_torn_file_detected(self, store):
        key = store.query_plan(1.0)["key"]
        path = store.root / "waveforms" / f"{key}.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(StoreError, match="unreadable|torn"):
            store.load_arrays(key)


class TestQueryPlan:
    def test_exact(self, store):
        plan = store.query_plan(2.0)
        assert plan["outcome"] == "exact"
        assert plan["mismatch_bound"] == 0.0
        assert store.entry_meta(plan["key"])["mass_ratio"] == 2.0

    def test_interp_carries_gap_bound(self, store):
        plan = store.query_plan(1.5)
        assert plan["outcome"] == "interp"
        qs = [store.entry_meta(k)["mass_ratio"] for k in plan["keys"]]
        assert qs == [1.0, 2.0]
        assert plan["weight"] == pytest.approx(0.5)
        # the bound is the stored adjacent mismatch of the bracket
        a = store.load_arrays(plan["keys"][0])
        b = store.load_arrays(plan["keys"][1])
        from repro.gw.compare import mismatch

        dt = float(a["times"][1] - a["times"][0])
        assert plan["mismatch_bound"] == pytest.approx(
            mismatch(a["h22"], b["h22"], dt))

    def test_out_of_range_misses(self, store):
        plan = store.query_plan(40.0)
        assert plan["outcome"] == "miss"
        assert plan["q_range"] == [1.0, 4.0]
        assert "outside covered range" in plan["reason"]
        assert store.entry_meta(plan["nearest"])["mass_ratio"] == 4.0

    def test_budget_turns_interp_into_miss(self, store):
        ok = store.query_plan(3.0)
        assert ok["outcome"] == "interp"
        tight = store.query_plan(3.0, max_interp_mismatch=1e-6)
        assert tight["outcome"] == "miss"
        assert "exceeds budget" in tight["reason"]

    def test_families_do_not_mix_grids(self, store):
        # an entry on a different grid cannot bracket-interpolate with
        # the model family even though its q falls inside the range
        t = np.linspace(0.0, 10.0, 64)
        store.add_waveform(2.5, t, np.exp(1j * t), source="odd-grid")
        plan = store.query_plan(2.25)
        assert plan["outcome"] == "interp"
        qs = sorted(store.entry_meta(k)["mass_ratio"]
                    for k in plan["keys"])
        assert qs == [2.0, 4.0]  # model family, not the odd-grid entry

    def test_filters(self, store):
        t = np.linspace(0.0, 10.0, 64)
        store.add_waveform(2.0, t, np.exp(1j * t), radius=50.0,
                           resolution=7, source="hi-res")
        # exact prefers the highest resolution
        plan = store.query_plan(2.0)
        assert store.entry_meta(plan["key"])["resolution"] == 7
        # filtering by radius picks the matching entry
        plan = store.query_plan(2.0, radius=50.0)
        assert store.entry_meta(plan["key"])["source"] == "hi-res"
        plan = store.query_plan(2.0, resolution=0)
        assert store.entry_meta(plan["key"])["resolution"] == 0
        # filters that nothing satisfies are an empty-catalog miss
        assert store.query_plan(2.0, radius=999.0)["outcome"] == "miss"
