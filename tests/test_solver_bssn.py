"""Tests for the BSSN evolution driver (Algorithm 1) at toy scale."""

import numpy as np
import pytest

from repro.bssn import BSSNParams, Puncture, flat_metric_state
from repro.bssn import state as S
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree, balance, puncture_refine_fn
from repro.solver import BSSNSolver, enforce_algebraic_constraints


@pytest.fixture(scope="module")
def flat_solver():
    mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-10.0, 10.0)))
    s = BSSNSolver(mesh)
    s.set_state(flat_metric_state((mesh.num_octants, 7, 7, 7)))
    return s


class TestAlgebraicEnforcement:
    def test_unit_determinant_restored(self):
        u = flat_metric_state((4, 7, 7, 7))
        u[S.GT11] *= 1.1  # det drifts
        enforce_algebraic_constraints(u)
        from repro.bssn.geometry import det_sym, sym3x3

        det = det_sym(sym3x3(u[S.GT_SYM, ...]))
        assert np.allclose(det, 1.0, atol=1e-12)

    def test_traceless_At_restored(self):
        u = flat_metric_state((4, 7, 7, 7))
        u[S.AT11] = 0.3
        u[S.AT22] = 0.3
        u[S.AT33] = 0.3
        enforce_algebraic_constraints(u)
        tr = u[S.AT11] + u[S.AT22] + u[S.AT33]
        assert np.allclose(tr, 0.0, atol=1e-12)

    def test_floors(self):
        u = flat_metric_state((2, 7, 7, 7))
        u[S.CHI] = -1.0
        u[S.ALPHA] = 0.0
        enforce_algebraic_constraints(u, chi_floor=1e-6)
        assert np.all(u[S.CHI] >= 1e-6)
        assert np.all(u[S.ALPHA] >= 1e-6)


class TestFlatEvolution:
    def test_flat_stays_flat(self, flat_solver):
        s = flat_solver
        for _ in range(2):
            s.step()
        assert np.abs(s.state[S.ALPHA] - 1.0).max() < 1e-13
        assert np.abs(s.state[S.K]).max() < 1e-13
        assert np.abs(s.state[S.GT12]).max() < 1e-13

    def test_requires_initial_data(self):
        mesh = Mesh(LinearOctree.uniform(1))
        s = BSSNSolver(mesh)
        with pytest.raises(RuntimeError):
            s.step()

    def test_state_shape_validated(self):
        mesh = Mesh(LinearOctree.uniform(1))
        s = BSSNSolver(mesh)
        with pytest.raises(ValueError):
            s.set_state(np.zeros((24, 3, 7, 7, 7)))


@pytest.fixture(scope="module")
def puncture_solver():
    fn = puncture_refine_fn([(np.zeros(3), 1.0)], theta=0.6)
    tree = balance(
        LinearOctree.from_refinement(
            fn, domain=Domain(-16.0, 16.0), base_level=2, max_level=4
        )
    )
    assert tree.max_level == 4  # actually graded toward the puncture
    mesh = Mesh(tree)
    s = BSSNSolver(mesh, BSSNParams(eta=2.0))
    s.set_punctures([Puncture(1.0, [0.0, 0.0, 0.0])])
    return s


class TestPunctureEvolution:
    def test_short_evolution_stable(self, puncture_solver):
        """A few steps of a Schwarzschild puncture: finite state, lapse
        collapsing at the puncture (1+log), constraints bounded."""
        s = puncture_solver
        c0 = s.constraints()
        for _ in range(3):
            s.step()
        assert np.isfinite(s.state).all()
        c1 = s.constraints()
        # constraint growth bounded over 3 steps
        assert c1["ham_l2"] < 20.0 * max(c0["ham_l2"], 1e-10)
        # lapse stays in (0, 1] and is smallest near the puncture
        alpha = s.state[S.ALPHA]
        assert alpha.min() > 0.0
        assert alpha.max() <= 1.0 + 1e-8
        centers = s.mesh.tree.domain.to_physical(s.mesh.tree.octants.centers())
        inner = np.linalg.norm(centers, axis=1) < 4.0
        assert inner.any() and (~inner).any()
        assert alpha[inner].min() < alpha[~inner].min()

    def test_psi4_field_available(self, puncture_solver):
        s = puncture_solver
        idx = np.arange(min(8, s.mesh.num_octants))
        re, im = s.psi4_field(idx)
        assert re.shape == (len(idx), 7, 7, 7)
        assert np.isfinite(re).all() and np.isfinite(im).all()

    def test_evolve_with_monitor(self, puncture_solver):
        s = puncture_solver
        t0 = s.t
        rec = s.evolve(t0 + 2.0 * s.dt, monitor_every=1)
        assert len(rec.times) >= 2
        assert all(np.isfinite(list(c.values())).all() is not False
                   for c in rec.constraint_history)


class TestRegridIntegration:
    def test_regrid_transfers_state(self):
        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-16.0, 16.0)))
        s = BSSNSolver(mesh)
        s.set_punctures([Puncture(1.0, [0.0, 0.0, 0.0])])
        changed = s.regrid(1e-4, max_level=4)
        assert changed
        assert s.mesh.num_octants != 64
        # state shape follows the mesh and stays physical
        assert s.state.shape[1] == s.mesh.num_octants
        assert s.state[S.CHI].min() > 0
        # one step on the new grid works
        s.step()
        assert np.isfinite(s.state).all()


class TestExtractionIntegration:
    def test_schwarzschild_radiates_nothing(self):
        """A single static puncture has no (2,2) radiation: extracted Ψ₄
        modes stay at roundoff — a physics end-to-end check."""
        from repro.bssn import Puncture

        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-12.0, 12.0)))
        s = BSSNSolver(mesh)
        s.set_punctures([Puncture(1.0, [0.0, 0.0, 0.0])])
        ex = s.attach_extractor([8.0], extract_every=1)
        s.evolve_with_extraction(2 * s.dt)
        t, c22 = ex.series(8.0, 2, 2)
        assert len(t) == 2
        assert np.abs(c22).max() < 1e-10

    def test_requires_attached_extractor(self):
        mesh = Mesh(LinearOctree.uniform(1, domain=Domain(-8.0, 8.0)))
        s = BSSNSolver(mesh)
        with pytest.raises(RuntimeError):
            s.extract_now()
        with pytest.raises(RuntimeError):
            s.evolve_with_extraction(0.1)
