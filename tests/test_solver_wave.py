"""Tests for the linear wave solver: propagation, extraction, AMR."""

import numpy as np
import pytest

from repro.gw import WaveExtractor, gauss_legendre_rule
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.solver import GaussianSource, WaveSolver, courant_dt, rk4_step


class TestRK4:
    def test_exact_on_linear_ode(self):
        """du/dt = -u: one RK4 step matches exp(-dt) to O(dt^5)."""
        u0 = np.array([1.0])
        dt = 0.1
        u1 = rk4_step(lambda u, t: -u, u0, 0.0, dt)
        assert abs(u1[0] - np.exp(-dt)) < 1e-7

    def test_order_four(self):
        errs = []
        for dt in (0.1, 0.05):
            u = np.array([1.0])
            t = 0.0
            while t < 1.0 - 1e-12:
                u = rk4_step(lambda v, s: -v, u, t, dt)
                t += dt
            errs.append(abs(u[0] - np.exp(-1.0)))
        assert 12.0 < errs[0] / errs[1] < 20.0

    def test_post_stage_hook(self):
        calls = []
        rk4_step(lambda u, t: 0 * u, np.zeros(2), 0.0, 0.1,
                 post_stage=lambda u: calls.append(1))
        assert len(calls) == 4

    def test_courant(self):
        assert courant_dt(0.4, 0.25) == pytest.approx(0.1)


@pytest.fixture(scope="module")
def pulse_run():
    """Outgoing pulse from a compact source, evolved past the sample radius."""
    mesh = Mesh(LinearOctree.uniform(3, domain=Domain(-12.0, 12.0)))
    src = GaussianSource(lambda t: np.exp(-((t - 1.0) / 0.4) ** 2), width=1.0)
    ws = WaveSolver(mesh, source=src, ko_sigma=0.02)
    probes = {4.0: [], 8.0: []}
    times = []

    def on_step(s):
        times.append(s.t)
        for r in probes:
            probes[r].append(s.sample(np.array([[r, 0.0, 0.0]]))[0])

    ws.evolve(9.0, on_step=on_step)
    return ws, np.array(times), {r: np.array(v) for r, v in probes.items()}


class TestWavePropagation:
    def test_finite_and_nonzero(self, pulse_run):
        ws, times, probes = pulse_run
        assert np.isfinite(ws.state).all()
        assert np.abs(probes[4.0]).max() > 1e-4

    def test_unit_propagation_speed(self, pulse_run):
        """The pulse peak arrives at r=8 about 4 time units after r=4."""
        _, times, probes = pulse_run
        t4 = times[np.argmax(np.abs(probes[4.0]))]
        t8 = times[np.argmax(np.abs(probes[8.0]))]
        assert 2.5 < (t8 - t4) < 5.5

    def test_amplitude_falls_off(self, pulse_run):
        """Outgoing spherical wave decays ~1/r."""
        _, _, probes = pulse_run
        a4 = np.abs(probes[4.0]).max()
        a8 = np.abs(probes[8.0]).max()
        assert 1.3 < a4 / a8 < 3.5

    def test_boundary_lets_wave_leave(self, pulse_run):
        """After the pulse passes, the domain rings down (Sommerfeld)."""
        ws, _, _ = pulse_run
        e_final = ws.energy()
        # evolve further: energy keeps decreasing (radiating away)
        ws.evolve(ws.t + 2.0)
        assert ws.energy() < e_final * 1.05


class TestWaveSolverAMR:
    def test_regrid_follows_pulse(self):
        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-12.0, 12.0)))
        src = GaussianSource(lambda t: np.exp(-((t - 0.6) / 0.3) ** 2), width=1.2)
        ws = WaveSolver(mesh, source=src, ko_sigma=0.02)
        n0 = ws.mesh.num_octants
        ws.evolve(2.0, regrid_every=4, regrid_eps=1e-5, max_level=4)
        assert ws.mesh.num_octants > n0
        assert np.isfinite(ws.state).all()

    def test_gather_path_matches_scatter(self):
        """Same evolution through the legacy gather unzip."""
        def make(method):
            mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-10.0, 10.0)))
            src = GaussianSource(lambda t: np.exp(-((t - 0.5) / 0.3) ** 2))
            ws = WaveSolver(mesh, source=src, unzip_method=method)
            ws.evolve(1.0)
            return ws.state

        assert np.allclose(make("scatter"), make("gather"), atol=1e-13)


class TestExtractionIntegration:
    def test_quadrupole_source_fills_22_mode(self):
        """A Y22-modulated source radiates into the (2,2) mode and not
        into (2,1) (the machinery behind Figs. 19/21)."""
        from repro.gw.swsh import ylm

        mesh = Mesh(LinearOctree.uniform(3, domain=Domain(-12.0, 12.0)))

        def quad_source(coords, t):
            x, y, z = coords[..., 0], coords[..., 1], coords[..., 2]
            r = np.sqrt(x * x + y * y + z * z)
            th = np.arccos(np.clip(np.where(r > 1e-12, z / np.maximum(r, 1e-12), 1.0), -1, 1))
            ph = np.arctan2(y, x)
            return (
                np.exp(-((t - 1.0) / 0.4) ** 2)
                * np.exp(-(r / 1.5) ** 2)
                * np.real(ylm(2, 2, th, ph))
            )

        ws = WaveSolver(mesh, source=quad_source, ko_sigma=0.02)
        ex = WaveExtractor([6.0], l_max=2, s=0, rule=gauss_legendre_rule(10))
        ws.evolve(8.0, on_step=lambda s: ex.sample(s.mesh, s.state[0], s.t))
        t, c22 = ex.series(6.0, 2, 2)
        _, c21 = ex.series(6.0, 2, 1)
        _, c00 = ex.series(6.0, 0, 0)
        peak22 = np.abs(c22).max()
        assert peak22 > 1e-6
        assert np.abs(c21).max() < 0.05 * peak22
        assert np.abs(c00).max() < 0.3 * peak22
