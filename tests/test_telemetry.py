"""Tests for the unified telemetry subsystem: tracer, metrics registry,
sink, profiler adapter, journal mirroring, CLI compare, and overhead."""

import json
import time

import numpy as np
import pytest

from repro.perf import PHASES, StepProfiler
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    TelemetrySink,
    Tracer,
    load_snapshots,
    merge_chrome_traces,
    read_events,
    write_snapshot,
)
from repro.telemetry.cli import (
    PHASE_ORDER,
    compare_profiles,
    load_profile,
    summarize_run,
)


# ---------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_record_depth_and_order(self):
        tr = Tracer(capacity=64)
        with tr.span("step", "step"):
            with tr.span("unzip", "phase"):
                pass
            with tr.span("deriv", "phase"):
                pass
        recs = tr.records()
        # inner spans close before the outer one, so they appear first
        assert [r[1] for r in recs] == ["unzip", "deriv", "step"]
        assert [r[5] for r in recs] == [1, 1, 0]  # depth of each span
        assert tr.open_spans == 0

    def test_begin_end_args_merge(self):
        tr = Tracer(capacity=8)
        tr.begin("halo.exchange", "comm", {"dof": 24})
        tr.end({"bytes": 1024})
        (rec,) = tr.records()
        assert rec[6] == {"dof": 24, "bytes": 1024}

    def test_ring_wraparound_counts_dropped(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.instant(f"e{i}")
        assert len(tr) == 4
        assert tr.dropped == 6
        # the survivors are the newest four, oldest first
        assert [r[1] for r in tr.records()] == ["e6", "e7", "e8", "e9"]

    def test_disabled_is_true_noop(self):
        tr = Tracer(enabled=False, capacity=4)
        # one shared null context: no allocation per call
        assert tr.span("a") is tr.span("b")
        tr.begin("x")
        tr.end()
        tr.instant("y")
        assert len(tr) == 0 and tr.open_spans == 0

    def test_chrome_export_schema(self):
        tr = Tracer(capacity=64, tid=3)
        with tr.span("step", "step", {"n": 1}):
            with tr.span("unzip", "phase"):
                pass
        tr.instant("rollback", "event", {"attempt": 1})
        trace = tr.to_chrome(label="unit")
        # must survive a JSON round-trip (what Perfetto loads)
        trace = json.loads(json.dumps(trace))
        assert trace["otherData"]["schema"] == "repro-trace-v1"
        evs = trace["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        spans = [e for e in evs if e["ph"] == "X"]
        instants = [e for e in evs if e["ph"] == "i"]
        assert meta and meta[0]["args"]["name"] == "unit"
        assert {e["name"] for e in spans} == {"step", "unzip"}
        for e in spans:
            assert e["dur"] >= 0 and e["ts"] >= 0 and e["tid"] == 3
        assert instants[0]["s"] == "t"
        # the inner span is contained in the outer one (Perfetto nesting)
        step = next(e for e in spans if e["name"] == "step")
        unzip = next(e for e in spans if e["name"] == "unzip")
        assert step["ts"] <= unzip["ts"]
        assert unzip["ts"] + unzip["dur"] <= step["ts"] + step["dur"] + 1e-6

    def test_merge_traces(self):
        trs = [Tracer(capacity=8, tid=r) for r in range(2)]
        for tr in trs:
            tr.instant("x")
        merged = merge_chrome_traces([t.to_chrome() for t in trs])
        tids = {e["tid"] for e in merged["traceEvents"] if e["ph"] == "i"}
        assert tids == {0, 1}


# ---------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------
class TestMetrics:
    def test_histogram_bucket_edges_inclusive_upper(self):
        h = Histogram(edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0):       # (..., 1.0] -> bucket 0
            h.observe(v)
        h.observe(1.5)             # (1.0, 2.0] -> bucket 1
        h.observe(4.0)             # (2.0, 4.0] -> bucket 2
        h.observe(100.0)           # overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 4.0 + 100.0) / 5)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))

    def test_default_latency_buckets_span_us_to_30s(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 30.0

    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("halo_bytes", src=0, dst=1)
        assert reg.counter("halo_bytes", dst=1, src=0) is c  # label order
        with pytest.raises(TypeError):
            reg.gauge("halo_bytes", src=0, dst=1)

    def test_label_named_name_is_allowed(self):
        reg = MetricsRegistry()
        reg.gauge("constraint", name="ham_l2").set(1.0)
        assert reg.get("constraint", name="ham_l2").value == 1.0

    def test_counter_monotone(self):
        c = MetricsRegistry().counter("steps_total")
        c.inc()
        c.inc(np.float64(2.0))
        assert c.value == 3.0 and type(c.value) is float
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_roundtrip_exact(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("steps_total").inc(7)
        reg.gauge("octants", level=3).set(84)
        h = reg.histogram("phase_seconds", phase="unzip")
        for v in (1e-5, 3e-4, 0.02):
            h.observe(v)
        path = tmp_path / "metrics.jsonl"
        with open(path, "w") as fh:
            write_snapshot(fh, reg, step=7)
            write_snapshot(fh, reg, step=8)
        snaps = load_snapshots(path)
        assert [s["step"] for s in snaps] == [7, 8]
        back = MetricsRegistry.from_snapshot(snaps[-1])
        assert back.snapshot(wall=0.0) == reg.snapshot(wall=0.0)
        assert back.get("phase_seconds", phase="unzip").counts == h.counts

    def test_load_snapshots_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry()
        reg.counter("steps_total").inc()
        with open(path, "w") as fh:
            write_snapshot(fh, reg, step=1)
            fh.write('{"schema": "repro-met')  # crash mid-write
        assert len(load_snapshots(path)) == 1


# ---------------------------------------------------------------------
# profiler adapter
# ---------------------------------------------------------------------
class TestProfilerAdapter:
    def test_summary_shape_unchanged(self):
        prof = StepProfiler()
        prof.begin_step()
        with prof.phase("unzip"):
            pass
        prof.end_step()
        s = prof.summary()
        assert set(s) == {"steps", "step_time", "phase_total", "phases"}
        assert set(s["phases"]) == set(PHASES)
        assert set(s["phases"]["unzip"]) == {"total", "per_step", "fraction"}
        assert "StepProfiler: 1 steps" in prof.report()

    def test_reentrant_same_phase_does_not_clobber(self):
        """Regression: one shared _PhaseTimer per phase used to hold a
        single _t0, so nested/re-entrant use of the same phase lost the
        outer start time."""
        prof = StepProfiler()
        timer = prof.phase("zip")
        with timer:
            time.sleep(0.01)
            with prof.phase("zip"):
                time.sleep(0.01)
            # outer frame must still be live: total gets outer + inner
        # inner ~0.01 + outer ~0.02 => >= 0.025 if the outer t0 survived;
        # the old clobbering bug yields ~0.02
        assert prof.totals["zip"] >= 0.025

    def test_spans_and_histograms_flow_to_telemetry(self):
        tr = Tracer(capacity=256)
        reg = MetricsRegistry()
        prof = StepProfiler(tracer=tr, metrics=reg, record_samples=True)
        for _ in range(2):
            prof.begin_step()
            with prof.stage(1):
                with prof.phase("unzip"):
                    pass
            prof.end_step()
        names = [r[1] for r in tr.records()]
        assert names.count("step") == 2
        assert names.count("rk4.stage1") == 2
        assert names.count("unzip") == 2
        assert reg.get("phase_seconds", phase="unzip").count == 2
        assert reg.get("step_seconds").count == 2
        assert reg.get("steps_total").value == 2
        assert len(prof.samples["unzip"]) == 2
        assert len(prof.step_samples) == 2

    def test_disabled_profiler_shares_null_context(self):
        prof = StepProfiler(enabled=False)
        assert prof.phase("unzip") is prof.phase("axpy")
        assert prof.stage(1) is prof.region("regrid")
        assert prof.tracer is None and prof.metrics is None

    def test_disabled_tracer_not_attached(self):
        prof = StepProfiler(tracer=Tracer(enabled=False))
        assert prof.tracer is None


# ---------------------------------------------------------------------
# sink + journal
# ---------------------------------------------------------------------
class TestSink:
    def test_run_dir_layout_and_events(self, tmp_path):
        d = tmp_path / "run"
        with TelemetrySink(d, label="unit") as sink:
            sink.metrics.counter("steps_total").inc()
            sink.event("rollback", step=3, attempt=1)
        meta = json.loads((d / "meta.json").read_text())
        assert meta["schema"] == "repro-telemetry-run-v1"
        assert meta["label"] == "unit"
        assert meta["events"] == 1
        events = read_events(d / "events.jsonl")
        assert events[0]["kind"] == "rollback" and events[0]["step"] == 3
        trace = json.loads((d / "trace.json").read_text())
        assert any(e["ph"] == "i" and e["name"] == "rollback"
                   for e in trace["traceEvents"])
        assert load_snapshots(d / "metrics.jsonl")

    def test_journal_mirrors_into_sink(self, tmp_path):
        from repro.resilience import RunJournal

        sink = TelemetrySink(None, label="unit")
        j = RunJournal(tmp_path / "journal.jsonl", sink=sink)
        j.event("rollback", step=5, reasons=["nan"])
        j.close()
        assert j.count("rollback") == 1
        assert sink.events[0]["kind"] == "rollback"
        assert sink.events[0]["step"] == 5
        # and it landed on the trace timeline as an instant
        assert [r[1] for r in sink.tracer.records()] == ["rollback"]

    def test_sink_journal_factory(self):
        sink = TelemetrySink(None)
        j = sink.journal()
        j.event("regrid", octants=100)
        assert sink.events[0]["kind"] == "regrid"

    def test_disabled_sink_stays_inert_but_usable(self):
        sink = TelemetrySink(None, enabled=False)
        prof = sink.profiler()
        prof.begin_step()
        with prof.phase("unzip"):
            pass
        prof.end_step()
        sink.event("rollback")
        assert len(sink.tracer) == 0  # tracer off
        assert sink.events  # events still recorded


# ---------------------------------------------------------------------
# layer instrumentation
# ---------------------------------------------------------------------
class TestLayerInstrumentation:
    def test_halo_exchange_publishes_edges_and_closes_span(self):
        from repro.mesh import Mesh
        from repro.octree import LinearOctree, partition_octree
        from repro.parallel import SimComm, build_halo_plan, exchange_ghosts

        mesh = Mesh(LinearOctree.uniform(2))
        part = partition_octree(mesh.tree, 2)
        plan = build_halo_plan(mesh, part)
        comm = SimComm(2)
        u = mesh.allocate(2)
        locals_ = [u[:, part.offsets[r]: part.offsets[r + 1]]
                   for r in range(2)]
        tr = Tracer(capacity=16)
        reg = MetricsRegistry()
        exchange_ghosts(plan, locals_, comm, dof=2, tracer=tr, metrics=reg)
        assert tr.open_spans == 0
        (rec,) = [r for r in tr.records() if r[1] == "halo.exchange"]
        assert rec[6]["messages"] > 0 and rec[6]["bytes"] > 0
        edge_bytes = sum(v.value for v in reg.family("halo_bytes").values())
        assert edge_bytes == rec[6]["bytes"]
        msgs = sum(v.value for v in reg.family("halo_messages").values())
        assert msgs == rec[6]["messages"]

    def test_halo_span_closes_on_failure(self):
        from repro.mesh import Mesh
        from repro.octree import LinearOctree, partition_octree
        from repro.parallel import (
            HaloExchangeError,
            build_halo_plan,
            exchange_ghosts,
        )
        from repro.resilience import FaultyComm

        mesh = Mesh(LinearOctree.uniform(2))
        part = partition_octree(mesh.tree, 2)
        plan = build_halo_plan(mesh, part)
        comm = FaultyComm(2, drop_prob=1.0, seed=1)  # every message lost
        u = mesh.allocate(2)
        locals_ = [u[:, part.offsets[r]: part.offsets[r + 1]]
                   for r in range(2)]
        tr = Tracer(capacity=16)
        with pytest.raises(HaloExchangeError):
            exchange_ghosts(plan, locals_, comm, dof=2, max_retries=1,
                            tracer=tr)
        # the span must not leak: the supervisor catches the error and
        # keeps stepping on the same tracer
        assert tr.open_spans == 0

    def test_virtual_gpu_launch_publishes(self):
        from repro.gpu import VirtualGPU, rhs_stats

        sink = TelemetrySink(None)
        gpu = VirtualGPU(telemetry=sink)
        stats = rhs_stats(100, o_a=7236)
        t = gpu.launch(stats)
        assert sink.metrics.get("gpu_flops", kernel="bssn-rhs").value == stats.flops
        assert sink.metrics.get("gpu_seconds", kernel="bssn-rhs").value == t
        assert sink.metrics.get("gpu_launches", kernel="bssn-rhs").value == 1
        assert [r[1] for r in sink.tracer.records()] == ["gpu.launch"]

    def test_publish_balance_metrics(self):
        from repro.mesh import Mesh
        from repro.octree import LinearOctree, partition_octree
        from repro.parallel import publish_balance_metrics

        mesh = Mesh(LinearOctree.uniform(2))
        part = partition_octree(mesh.tree, 4)
        reg = MetricsRegistry()
        ratio = publish_balance_metrics(reg, mesh, part)
        assert reg.get("load_imbalance").value == ratio >= 1.0
        owned = reg.family("octants_owned")
        assert sum(v.value for v in owned.values()) == mesh.num_octants
        assert len(reg.family("rank_work")) == 4

    def test_regrid_spans(self):
        from repro.mesh import Mesh, regrid_flags, remesh, transfer_fields
        from repro.octree import LinearOctree

        mesh = Mesh(LinearOctree.uniform(2))
        u = mesh.allocate(1)
        u[:] = 1.0
        refine = np.zeros(mesh.num_octants, dtype=bool)
        refine[0] = True
        coarsen = np.zeros(mesh.num_octants, dtype=bool)
        tr = Tracer(capacity=16)
        new = remesh(mesh, refine, coarsen, tracer=tr)
        out = transfer_fields(mesh, new, u, tracer=tr)
        assert np.allclose(out, 1.0)
        names = [r[1] for r in tr.records()]
        assert names == ["remesh", "regrid.transfer"]
        assert tr.open_spans == 0


# ---------------------------------------------------------------------
# CLI: profiles, compare, end-to-end record
# ---------------------------------------------------------------------
class TestCompare:
    def test_phase_order_matches_perf(self):
        assert PHASE_ORDER == PHASES

    def test_detects_regression_on_synthetic_profiles(self):
        a = {"source": "a", "phases": {p: 1.0 for p in PHASES},
             "sec_per_step": 6.5}
        b = {"source": "b",
             "phases": {**{p: 1.0 for p in PHASES}, "deriv": 1.3},
             "sec_per_step": 6.8}
        r = compare_profiles(a, b, threshold=0.1)
        assert r["regressions"] == ["deriv"]
        assert not r["ok"]
        # the same delta under a looser threshold passes
        assert compare_profiles(a, b, threshold=0.5)["ok"]

    def test_improvement_is_not_regression(self):
        a = {"source": "a", "phases": {p: 1.0 for p in PHASES}}
        b = {"source": "b", "phases": {p: 0.5 for p in PHASES}}
        assert compare_profiles(a, b, threshold=0.1)["ok"]

    def test_load_profile_from_bench_json(self, tmp_path):
        report = {
            "schema": "repro-bench-hotpath-v1",
            "telemetry_profile": {
                "phases": {p: 0.1 for p in PHASES},
                "sec_per_step": 0.7,
                "steps": 2,
            },
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report))
        prof = load_profile(path)
        assert prof["kind"] == "bench-json"
        assert prof["phases"]["unzip"] == 0.1
        assert prof["sec_per_step"] == 0.7

    def test_load_profile_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError):
            load_profile(path)


class TestEndToEnd:
    def test_instrumented_wave_run_dir(self, tmp_path):
        """A full sink-wired evolution produces a coherent run dir that
        summarize/compare can consume."""
        from repro.mesh import Mesh
        from repro.octree import Domain, LinearOctree
        from repro.resilience import SupervisedRun
        from repro.solver import WaveSolver

        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-4.0, 4.0)))
        d = tmp_path / "run"
        sink = TelemetrySink(d, metrics_every=2, label="wave-unit")
        solver = WaveSolver(mesh, profiler=sink.profiler())
        run = SupervisedRun(solver, telemetry=sink)
        run.run(t_end=4 * solver.dt)
        sink.finalize(solver, report=run.report())

        prof = load_profile(d)
        assert prof["steps"] == 4
        assert prof["phases"]["deriv"] > 0
        text = summarize_run(d)
        assert "deriv" in text and "octants" in text
        # self-comparison is regression-free
        assert compare_profiles(prof, load_profile(d))["ok"]
        # trace holds the full step -> stage -> phase hierarchy
        trace = json.loads((d / "trace.json").read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"step", "rk4.stage1", "unzip", "deriv"} <= names

    def test_supervisor_attaches_telemetry_to_distributed(self):
        from repro.mesh import Mesh
        from repro.octree import Domain, LinearOctree, partition_octree
        from repro.parallel import DistributedWaveSolver
        from repro.resilience import SupervisedRun

        mesh = Mesh(LinearOctree.uniform(2, domain=Domain(-4.0, 4.0)))
        part = partition_octree(mesh.tree, 2)
        solver = DistributedWaveSolver(mesh, part)
        solver.set_state(mesh.allocate(2))
        sink = TelemetrySink(None, metrics_every=1)
        run = SupervisedRun(solver, telemetry=sink)
        assert solver.telemetry is sink
        run.step()
        sink.finalize(solver)
        # halo spans from every RK4 stage landed on the timeline ...
        names = [r[1] for r in sink.tracer.records()]
        assert names.count("halo.exchange") == 4
        # ... and the traffic counters + comm gauges are populated
        assert sum(v.value
                   for v in sink.metrics.family("halo_bytes").values()) > 0
        assert sink.metrics.get("comm_bytes_total").value > 0
        assert sink.metrics.get("load_imbalance").value >= 1.0

    def test_disabled_tracer_overhead_under_2_percent(self):
        """Paired min-of-steps: a solver carrying a disabled profiler
        (the always-on configuration) must stay within 2% of a bare one."""
        from repro.mesh import Mesh
        from repro.octree import Domain, LinearOctree
        from repro.solver import WaveSolver

        mesh = Mesh(LinearOctree.uniform(3, domain=Domain(-4.0, 4.0)))
        bare = WaveSolver(mesh)
        off = WaveSolver(mesh, profiler=StepProfiler(enabled=False))
        bare.step(), off.step()  # warm both paths
        t_bare, t_off = [], []
        for _ in range(6):  # paired: drift hits both sides equally
            t0 = time.perf_counter()
            bare.step()
            t_bare.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            off.step()
            t_off.append(time.perf_counter() - t0)
        overhead = min(t_off) / min(t_bare) - 1.0
        assert overhead < 0.02, f"disabled-tracer overhead {overhead:.1%}"
