"""Tests for fleet telemetry: the shipper/aggregator delta protocol,
the rollup merge algebra, histogram quantiles, campaign trace assembly,
SLO rules, perf history, and a live coordinator round trip."""

import json

import pytest

from repro.telemetry import (
    FleetAggregator,
    MergeConflict,
    MetricsRegistry,
    SLORules,
    TelemetryShipper,
    add_entry,
    compare_to_history,
    load_history,
    load_rollups,
    merge_chrome_traces,
    merge_gauge,
    merge_histogram,
    quantile_from_dict,
    rolling_baseline,
)
from repro.telemetry.fleet import ROLLUPS_FILE, FLEET_EVENTS_FILE
from repro.telemetry.metrics import Histogram


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _hist_dict(values, edges=(1.0, 2.0, 4.0)):
    h = Histogram(edges=edges)
    for v in values:
        h.observe(v)
    return h.to_dict()


# ---------------------------------------------------------------------
# merge algebra
# ---------------------------------------------------------------------
class TestMergeAlgebra:
    def test_histogram_merge_is_commutative(self):
        a = _hist_dict([0.5, 1.5, 3.0])
        b = _hist_dict([1.0, 8.0])
        ab = merge_histogram(merge_histogram(None, a), b)
        ba = merge_histogram(merge_histogram(None, b), a)
        assert ab == ba
        assert ab["count"] == 5
        assert ab["counts"] == [2, 1, 1, 1]
        assert ab["min"] == 0.5 and ab["max"] == 8.0

    def test_histogram_merge_is_associative(self):
        parts = [_hist_dict([0.5]), _hist_dict([1.5, 2.5]),
                 _hist_dict([3.0, 9.0])]
        left = merge_histogram(
            merge_histogram(merge_histogram(None, parts[0]), parts[1]),
            parts[2])
        # fold the last two first, then the head
        tail = merge_histogram(merge_histogram(None, parts[1]), parts[2])
        right = merge_histogram(merge_histogram(None, parts[0]), tail)
        assert left == right

    def test_histogram_edge_mismatch_raises(self):
        a = merge_histogram(None, _hist_dict([0.5], edges=(1.0, 2.0)))
        with pytest.raises(MergeConflict):
            merge_histogram(a, _hist_dict([0.5], edges=(1.0, 3.0)))

    def test_gauge_last_write_wins_by_timestamp(self):
        g = merge_gauge(None, 1.0, 10.0, "a")
        assert g == (1.0, 10.0, "a")
        # an older sample (replayed delta) can never roll the gauge back
        assert merge_gauge(g, 99.0, 5.0, "b") == (1.0, 10.0, "a")
        # a newer one replaces it
        assert merge_gauge(g, 2.0, 11.0, "b") == (2.0, 11.0, "b")


# ---------------------------------------------------------------------
# quantiles
# ---------------------------------------------------------------------
class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram(edges=(1.0, 2.0))
        assert h.quantile(0.5) is None

    def test_single_sample_reports_itself_everywhere(self):
        h = Histogram(edges=(1.0, 2.0, 4.0))
        h.observe(1.7)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(1.7)

    def test_interpolation_within_bucket(self):
        # 100 samples spread uniformly in (1, 2]: p50 lands mid-bucket
        h = Histogram(edges=(1.0, 2.0, 4.0))
        for i in range(100):
            h.observe(1.0 + (i + 1) / 100.0)
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.05)
        assert h.quantile(0.99) == pytest.approx(2.0, abs=0.05)

    def test_clamped_by_observed_extrema(self):
        # everything in the overflow bucket: max clamps the estimate
        h = Histogram(edges=(1.0,))
        h.observe(5.0)
        h.observe(6.0)
        assert h.quantile(0.99) <= 6.0
        assert h.quantile(0.0) >= 5.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            quantile_from_dict(_hist_dict([1.0]), 1.5)


# ---------------------------------------------------------------------
# the shipper
# ---------------------------------------------------------------------
class TestShipper:
    def test_counter_deltas_are_exact_differences(self):
        clk = FakeClock()
        ship = TelemetryShipper("w0", clock=clk)
        ship.registry.counter("steps_total").inc(5)
        p1 = ship.flush()
        assert p1["deltas"][-1]["counters"] == [
            {"name": "steps_total", "labels": {}, "value": 5.0}]
        ship.commit(p1["deltas"][-1]["seq"])
        ship.registry.counter("steps_total").inc(3)
        p2 = ship.flush()
        # only the increment since the last flush ships
        assert p2["deltas"][-1]["counters"][0]["value"] == 3.0

    def test_unwatch_folds_final_diff(self):
        ship = TelemetryShipper("w0", clock=FakeClock())
        job = MetricsRegistry()
        ship.watch(job)
        job.counter("steps_total").inc(4)
        ship.unwatch(job)  # job registry goes away before any flush
        payload = ship.flush()
        assert payload["deltas"][-1]["counters"][0]["value"] == 4.0

    def test_event_queue_is_bounded_and_loss_counted(self):
        ship = TelemetryShipper("w0", max_events=2, clock=FakeClock())
        for i in range(5):
            ship.event({"kind": "rollback", "i": i})
        assert ship.lost_events == 3
        payload = ship.flush()
        events = payload["deltas"][-1]["events"]
        # the two newest survive; the payload carries the loss count
        assert [e["i"] for e in events] == [3, 4]
        assert payload["lost_events"] == 3

    def test_inflight_window_drops_oldest_and_counts(self):
        clk = FakeClock()
        ship = TelemetryShipper("w0", max_inflight=2, clock=clk)
        for _ in range(4):
            ship.registry.counter("steps_total").inc(1)
            assert ship.flush() is not None
        assert ship.lost_deltas == 2
        assert ship.backlog == 2

    def test_retransmit_until_commit(self):
        ship = TelemetryShipper("w0", clock=FakeClock())
        ship.registry.counter("steps_total").inc(1)
        p1 = ship.flush()
        ship.registry.counter("steps_total").inc(1)
        p2 = ship.flush()
        # un-acked delta 1 retransmits alongside delta 2
        assert [d["seq"] for d in p2["deltas"]] == [1, 2]
        ship.commit(2)
        assert ship.backlog == 0
        assert ship.stats()["shipped_deltas"] == 2


# ---------------------------------------------------------------------
# the aggregator
# ---------------------------------------------------------------------
def _payload(worker, clk, *, steps=0.0, hist_values=(), events=(),
             gauges=()):
    ship = TelemetryShipper(worker, clock=clk)
    if steps:
        ship.registry.counter("steps_total").inc(steps)
    for v in hist_values:
        ship.registry.histogram("step_seconds",
                                buckets=(0.01, 0.1, 1.0)).observe(v)
    for name, value in gauges:
        ship.registry.gauge(name).set(value)
    for ev in events:
        ship.event(ev)
    return ship.flush()


class TestAggregator:
    def test_ingest_order_does_not_change_rollup(self):
        clk = FakeClock()
        p_a = _payload("a", clk, steps=5, hist_values=[0.05, 0.5])
        p_b = _payload("b", clk, steps=3, hist_values=[0.02])
        agg1 = FleetAggregator(clock=clk)
        agg2 = FleetAggregator(clock=clk)
        agg1.ingest(p_a), agg1.ingest(p_b)
        agg2.ingest(p_b), agg2.ingest(p_a)
        assert agg1.counters == agg2.counters
        assert agg1.histograms == agg2.histograms
        assert agg1.counter_value("steps_total") == 8.0

    def test_duplicate_delivery_is_idempotent(self):
        clk = FakeClock()
        agg = FleetAggregator(clock=clk)
        payload = _payload("w0", clk, steps=5)
        ack1 = agg.ingest(payload)
        ack2 = agg.ingest(payload)  # RPC retry redelivers the window
        assert ack1 == ack2
        assert agg.counter_value("steps_total") == 5.0

    def test_losses_reported_without_corrupting_totals(self):
        clk = FakeClock()
        ship = TelemetryShipper("w0", max_inflight=2, clock=clk)
        payload = None
        for _ in range(5):  # 3 deltas fall off the window un-acked
            ship.registry.counter("steps_total").inc(1)
            payload = ship.flush()
        agg = FleetAggregator(clock=clk)
        agg.ingest(payload)
        agg.ingest(payload)
        # only the surviving window applies — exactly once — and the
        # drop count rides along instead of silently vanishing
        assert agg.counter_value("steps_total") == 2.0
        assert agg.snapshot()["workers"]["w0"]["lost_deltas"] == 3

    def test_histogram_conflicts_are_counted_not_fatal(self):
        clk = FakeClock()
        agg = FleetAggregator(clock=clk)
        agg.ingest(_payload("a", clk, hist_values=[0.05]))
        ship = TelemetryShipper("b", clock=clk)
        ship.registry.histogram("step_seconds",
                                buckets=(1.0, 2.0)).observe(0.5)
        agg.ingest(ship.flush())
        assert agg.merge_conflicts == 1
        assert agg.snapshot()["merge_conflicts"] == 1

    def test_rollups_persist_and_reload(self, tmp_path):
        clk = FakeClock()
        agg = FleetAggregator(tmp_path / "fleet", window_seconds=1.0,
                              clock=clk)
        agg.ingest(_payload("w0", clk, steps=4, hist_values=[0.05, 0.2]))
        clk.advance(1.5)
        rollup = agg.tick()
        assert rollup is not None and rollup["seq"] == 1
        agg.close()
        rollups = load_rollups(tmp_path / "fleet" / ROLLUPS_FILE)
        assert len(rollups) == 2  # the window plus the close() flush
        first = rollups[0]
        counters = {c["name"]: c["value"] for c in first["counters"]}
        assert counters["steps_total"] == 4.0
        hists = {h["name"]: h for h in first["histograms"]}
        assert hists["step_seconds"]["count"] == 2
        assert hists["step_seconds"]["p50"] is not None
        assert first["workers"]["w0"]["steps_total"] == 2

    def test_track_local_folds_coordinator_metrics(self):
        clk = FakeClock()
        agg = FleetAggregator(clock=clk)
        reg = MetricsRegistry()
        agg.track_local("coordinator", reg)
        reg.counter("requests", op="claim").inc(7)
        agg.tick(force=True)
        assert agg.counter_value("requests", op="claim") == 7.0
        assert "coordinator" in agg.snapshot()["workers"]


# ---------------------------------------------------------------------
# SLO rules
# ---------------------------------------------------------------------
class TestSLORules:
    def test_lease_expiry_spike_raises_then_clears(self, tmp_path):
        clk = FakeClock()
        agg = FleetAggregator(tmp_path / "fleet", window_seconds=1.0,
                              clock=clk)
        ship = TelemetryShipper("coordinator", clock=clk)
        ship.registry.counter("lease_expirations").inc(3)
        agg.ingest(ship.flush())
        clk.advance(1.5)
        rollup = agg.tick()
        assert [a["rule"] for a in rollup["alerts"]] == \
            ["lease-expiry-spike"]
        # next window: no new expirations → the alert clears
        clk.advance(1.5)
        rollup = agg.tick()
        assert rollup["alerts"] == []
        agg.close()
        kinds = [json.loads(line)["kind"] for line in
                 (tmp_path / "fleet" / FLEET_EVENTS_FILE)
                 .read_text().splitlines()]
        assert kinds.count("alert") == 1
        assert kinds.count("alert-cleared") == 1

    def test_recovery_spike(self):
        clk = FakeClock()
        agg = FleetAggregator(clock=clk)
        agg.ingest(_payload("w0", clk, events=[
            {"kind": "rollback"}, {"kind": "nan-detected"},
            {"kind": "rollback"}]))
        clk.advance(2.5)
        rollup = agg.tick()
        assert [a["rule"] for a in rollup["alerts"]] == ["recovery-spike"]

    def test_degraded_mode_entry_and_exit(self):
        clk = FakeClock()
        agg = FleetAggregator(clock=clk)
        ship = TelemetryShipper("w1", clock=clk)
        ship.registry.gauge("fabric_degraded").set(1.0)
        p = ship.flush()
        agg.ingest(p)
        clk.advance(2.5)
        rollup = agg.tick()
        assert [(a["rule"], a["worker"]) for a in rollup["alerts"]] == \
            [("degraded-mode", "w1")]
        ship.commit(p["deltas"][-1]["seq"])
        ship.registry.gauge("fabric_degraded").set(0.0)
        agg.ingest(ship.flush())
        clk.advance(2.5)
        assert agg.tick()["alerts"] == []

    def test_step_time_regression_needs_baseline(self):
        clk = FakeClock()
        rules = SLORules(step_time_factor=3.0, min_baseline_windows=2)
        agg = FleetAggregator(window_seconds=1.0, rules=rules, clock=clk)
        ship = TelemetryShipper("w0", clock=clk)
        ship.registry.gauge("job_predicted_step_seconds").set(0.01)

        def window(step_time):
            ship.registry.histogram(
                "step_seconds", buckets=(0.01, 0.1, 1.0)
            ).observe(step_time)
            ship.commit(agg.ingest(ship.flush()))
            clk.advance(1.5)
            return agg.tick()

        # healthy windows build the fleet baseline — no alert
        for _ in range(3):
            assert window(0.01)["alerts"] == []
        # then one window at 10× the model trips the regression rule
        rollup = window(0.1)
        assert [a["rule"] for a in rollup["alerts"]] == \
            ["step-time-regression"]


# ---------------------------------------------------------------------
# campaign trace merging
# ---------------------------------------------------------------------
def _trace(label, ts, *, pid=0):
    return {
        "otherData": {"epoch_wall": 0.0},
        "traceEvents": [
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": label}},
            {"ph": "X", "name": "step", "cat": "step", "pid": pid,
             "tid": 0, "ts": ts, "dur": 5.0},
        ],
    }


class TestMergeChromeTraces:
    def test_same_label_lands_on_one_lane(self):
        merged = merge_chrome_traces(
            [_trace("w0", 0.0), _trace("w0", 100.0)],
            labels=["w0", "w0"])
        timed = [e for e in merged["traceEvents"] if e["ph"] != "M"]
        assert {e["pid"] for e in timed} == {0}
        names = [e for e in merged["traceEvents"]
                 if e.get("name") == "process_name"]
        assert len(names) == 1 and names[0]["args"]["name"] == "w0"

    def test_distinct_labels_with_clashing_pids_split(self):
        merged = merge_chrome_traces(
            [_trace("w0", 0.0, pid=0), _trace("w1", 0.0, pid=0)],
            labels=["w0", "w1"])
        timed = [e for e in merged["traceEvents"] if e["ph"] != "M"]
        assert len({e["pid"] for e in timed}) == 2

    def test_shifts_applied_to_timed_events_only(self):
        merged = merge_chrome_traces(
            [_trace("w0", 10.0), _trace("w1", 10.0)],
            labels=["w0", "w1"], shifts_us=[0.0, 250.0])
        ts = sorted(e["ts"] for e in merged["traceEvents"]
                    if e["ph"] != "M")
        assert ts == [10.0, 260.0]

    def test_duplicate_metadata_deduped_without_labels(self):
        t = _trace("w0", 0.0)
        merged = merge_chrome_traces([t, json.loads(json.dumps(t))])
        names = [e for e in merged["traceEvents"]
                 if e.get("name") == "process_name"]
        assert len(names) == 1

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_chrome_traces([_trace("w0", 0.0)], labels=["a", "b"])
        with pytest.raises(ValueError):
            merge_chrome_traces([_trace("w0", 0.0)], shifts_us=[1.0, 2.0])


# ---------------------------------------------------------------------
# perf history
# ---------------------------------------------------------------------
def _profile_file(tmp_path, name, *, step, deriv):
    p = tmp_path / name
    p.write_text(json.dumps({"phases": {"deriv": deriv},
                             "sec_per_step": step}))
    return p


class TestHistory:
    def test_add_and_load_round_trip(self, tmp_path):
        hist = tmp_path / "history"
        add_entry(hist, _profile_file(tmp_path, "a.json",
                                      step=0.10, deriv=0.04), label="a")
        add_entry(hist, _profile_file(tmp_path, "b.json",
                                      step=0.12, deriv=0.05))
        entries = load_history(hist)
        assert [e["seq"] for e in entries] == [0, 1]
        assert entries[0]["label"] == "a"

    def test_rolling_baseline_is_per_phase_median(self, tmp_path):
        hist = tmp_path / "history"
        for i, step in enumerate((0.10, 0.20, 0.30)):
            add_entry(hist, _profile_file(tmp_path, f"p{i}.json",
                                          step=step, deriv=step / 2))
        base = rolling_baseline(load_history(hist))
        assert base["sec_per_step"] == pytest.approx(0.20)
        assert base["phases"]["deriv"] == pytest.approx(0.10)
        # the window trims from the old end
        base2 = rolling_baseline(load_history(hist), window=2)
        assert base2["sec_per_step"] == pytest.approx(0.25)

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            rolling_baseline([])

    def test_compare_to_history_flags_regression(self, tmp_path):
        hist = tmp_path / "history"
        for i in range(3):
            add_entry(hist, _profile_file(tmp_path, f"p{i}.json",
                                          step=0.10, deriv=0.04))
        slow = _profile_file(tmp_path, "slow.json", step=0.30, deriv=0.12)
        result = compare_to_history(hist, slow, threshold=0.1)
        assert not result["ok"]
        assert "deriv" in result["regressions"]
        fast = _profile_file(tmp_path, "fast.json", step=0.10, deriv=0.04)
        assert compare_to_history(hist, fast, threshold=0.1)["ok"]


# ---------------------------------------------------------------------
# live coordinator round trip
# ---------------------------------------------------------------------
class TestFleetEndToEnd:
    def test_heartbeat_piggyback_and_fleet_rpc(self, tmp_path):
        from repro.jobs.fabric import Coordinator, FabricQueue

        with Coordinator(tmp_path, lease_seconds=60.0,
                         reap_interval=600.0, fleet=True) as coord:
            shipper = TelemetryShipper("w-test")
            fq = FabricQueue(coord.address, name="w-test",
                             shipper=shipper)
            fq.attach()
            fq.submit({"name": "j"}, cache_key="k0",
                      cost={"total_seconds": 1.0})
            rec = fq.claim()
            shipper.registry.counter("steps_total").inc(7)
            assert fq.heartbeat(rec["id"]) is True
            fq.complete(rec["id"], {"ok": True}, worker="w-test",
                        attempt=rec["attempts"])
            fq.push_telemetry()
            assert shipper.backlog == 0  # everything acked

            status = fq.client.call("fleet")
            counters = {c["name"]: c["value"] for c in status["counters"]
                        if not c["labels"]}
            assert counters["steps_total"] == 7.0
            assert "w-test" in status["workers"]
            assert status["workers"]["w-test"]["lost_deltas"] == 0
            # satellite 3: RPC latency ships end-to-end per op
            ops = {dict(h["labels"]).get("op")
                   for h in status["histograms"]
                   if h["name"] == "rpc_latency_seconds"}
            assert "claim" in ops
            assert status["counts"]["done"] == 1
            fq.close()
        # the coordinator's shutdown flush persists the final rollup
        rollups = load_rollups(tmp_path / "fleet" / ROLLUPS_FILE)
        assert rollups
        assert "w-test" in rollups[-1]["workers"]
