"""Tests for the puncture tracker and the radiated-flux formulas."""

import numpy as np
import pytest

from repro.bssn import Puncture, flat_metric_state, mesh_puncture_state
from repro.bssn import state as S
from repro.gw import (
    angular_momentum_flux_z,
    energy_flux,
    radiated_angular_momentum_z,
    radiated_energy,
    time_integrate,
)
from repro.mesh import Mesh
from repro.octree import Domain, LinearOctree
from repro.solver import PunctureTracker


@pytest.fixture()
def mesh():
    return Mesh(LinearOctree.uniform(2, domain=Domain(-8.0, 8.0)))


class TestPunctureTracker:
    def test_static_with_zero_shift(self, mesh):
        u = flat_metric_state((mesh.num_octants, 7, 7, 7))
        tr = PunctureTracker([[1.0, 0.0, 0.0]])
        tr.update(mesh, u, 0.0, 0.1)
        assert np.allclose(tr.positions[0], [1.0, 0.0, 0.0])

    def test_constant_shift_advects(self, mesh):
        """dx/dt = −β: constant β = (0.2, 0, 0) moves the puncture by
        −0.2 dt."""
        u = flat_metric_state((mesh.num_octants, 7, 7, 7))
        u[S.BETA0] = 0.2
        tr = PunctureTracker([[1.0, 0.5, 0.0]])
        dt = 0.25
        for i in range(4):
            tr.update(mesh, u, i * dt, dt)
        assert np.allclose(tr.positions[0], [1.0 - 0.2 * 1.0, 0.5, 0.0],
                           atol=1e-10)

    def test_linear_shift_exact_for_rk2(self, mesh):
        """β^x = c·x gives exponential decay; RK2 is accurate to O(dt³)."""
        c = 0.3
        coords = mesh.coordinates()
        u = flat_metric_state((mesh.num_octants, 7, 7, 7))
        u[S.BETA0] = c * coords[..., 0]
        tr = PunctureTracker([[2.0, 0.0, 0.0]])
        dt = 0.05
        for i in range(10):
            tr.update(mesh, u, i * dt, dt)
        expect = 2.0 * np.exp(-c * 0.5)
        assert tr.positions[0][0] == pytest.approx(expect, rel=1e-4)

    def test_separation_and_history(self, mesh):
        u = flat_metric_state((mesh.num_octants, 7, 7, 7))
        tr = PunctureTracker([[2.0, 0, 0], [-2.0, 0, 0]], masses=[0.5, 0.5])
        assert tr.separation() == pytest.approx(4.0)
        tr.update(mesh, u, 0.0, 0.1)
        t, pos = tr.trajectory(0)
        assert len(t) == 1 and pos.shape == (1, 3)

    def test_refine_fn_targets_positions(self, mesh):
        tr = PunctureTracker([[3.0, 0, 0]], masses=[1.0])
        fn = tr.refine_fn(theta=1.0)
        centers = np.array([[3.0, 0.0, 0.0], [7.5, 7.5, 7.5]])
        sizes = np.array([2.0, 2.0])
        flags = fn(centers, sizes, 0)
        assert flags[0] and not flags[1]

    def test_mass_count_validated(self):
        with pytest.raises(ValueError):
            PunctureTracker([[0, 0, 0]], masses=[1.0, 2.0])


class TestFluxes:
    def test_time_integrate_linear(self):
        t = np.linspace(0, 2, 101)
        f = 3.0 * np.ones_like(t)
        F = time_integrate(t, f)
        assert F[-1] == pytest.approx(6.0)
        with pytest.raises(ValueError):
            time_integrate(t, f[:-1])

    def test_monochromatic_energy(self):
        """Ψ₄ = A e^{-iωt}: dE/dt = r²A²/(16π ω²)."""
        A, w, r = 2.0, 3.0, 50.0
        t = np.linspace(0, 40, 8001)
        psi = A * np.exp(-1j * w * t)
        flux = energy_flux(t, {(2, 2): psi}, r)
        # ∫_0^t psi dt' = (A/ω)(e^{-iωt} − 1)/(−i): |News|² = (A/ω)²(2 − 2cos ωt)
        # whose median over many periods is 2 (A/ω)²
        expect = 2.0 * r**2 * A**2 / (16 * np.pi * w**2)
        assert np.median(flux[2000:]) == pytest.approx(expect, rel=0.15)

    def test_energy_positive_and_additive(self):
        t = np.linspace(0, 10, 1001)
        m1 = {(2, 2): np.exp(-1j * 2 * t)}
        m2 = {(2, 2): np.exp(-1j * 2 * t), (2, -2): np.exp(1j * 2 * t)}
        e1 = radiated_energy(t, m1, 10.0)
        e2 = radiated_energy(t, m2, 10.0)
        assert 0 < e1 < e2

    def test_angular_momentum_sign_flips_with_m(self):
        t = np.linspace(0, 20, 2001)
        psi = np.exp(-1j * 2 * t)
        jz_pos = radiated_angular_momentum_z(t, {(2, 2): psi}, 10.0)
        jz_neg = radiated_angular_momentum_z(t, {(2, -2): psi}, 10.0)
        assert jz_pos * jz_neg < 0.0

    def test_m0_carries_no_jz(self):
        t = np.linspace(0, 20, 501)
        flux = angular_momentum_flux_z(t, {(2, 0): np.sin(t)}, 10.0)
        assert np.allclose(flux, 0.0)
